// Connection-simulation fixture throughput harness.
//
// Runs the full per-app dynamic pipeline (baseline + MITM captures,
// differential detection, circumvention, PII) over every app of a generated
// ecosystem, once without and once with the study-scoped SimFixtures
// (shared proxy CA, forged-leaf cache, immutable root stores, and the
// chain-validation memo), and writes the results as machine-readable JSON
// to BENCH_dynamic.json so CI can track the speedup over time.
//
// A second dimension compares the two study schedulers (DESIGN.md §13):
// one full Study per scheduler over the same corpus — the phase-barrier
// fan-out against the barrier-free per-app pipeline — reporting wall
// milliseconds each plus the pipeline's peak ready-queue depth and queue
// lock contention, with a byte-equality guard on the exports (the
// schedulers must agree exactly). Both timed studies run WITHOUT an
// observer (an attached observer journals every verdict, a cost that once
// skewed this comparison); queue metrics come from one extra untimed
// instrumented run. Both schedulers run at an explicit worker count —
// PINSCOPE_BENCH_THREADS, default max(2, hardware threads) — never at
// "hardware concurrency" directly: on a single-core CI box that default
// used to resolve both sides to the inline serial path, making the
// comparison serial-vs-serial and the numbers meaningless. The worker
// count actually used is recorded as scheduler.workers in the JSON.
//
// Knobs: PINSCOPE_BENCH_SCALE_PCT (ecosystem scale in percent, default 5),
//        PINSCOPE_BENCH_REPS (timed repetitions, default 5; best rep wins),
//        PINSCOPE_BENCH_THREADS (scheduler-comparison workers, default
//        max(2, hardware threads)).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <memory>
#include <string>
#include <thread>

#include "bench_json.h"
#include "core/export.h"
#include "core/study.h"
#include "dynamicanalysis/pipeline.h"
#include "dynamicanalysis/sim_fixtures.h"
#include "obs/obs.h"
#include "store/generator.h"

namespace {

using namespace pinscope;

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Checksum over everything a pass concludes, so a fixture bug that changes
/// any verdict (not just the pinned count) trips the FATAL below.
struct PassResult {
  std::size_t apps = 0;
  std::size_t destinations = 0;
  std::size_t pinned = 0;
  std::size_t circumvented = 0;
  std::size_t pii_hits = 0;

  bool operator==(const PassResult&) const = default;
};

/// One full corpus pass; returns wall milliseconds. Fixtures (when used)
/// start cold, as at the beginning of a study.
double TimedPass(const store::Ecosystem& eco, bool use_fixtures,
                 PassResult* out,
                 std::unique_ptr<dynamicanalysis::SimFixtures>* fixtures_out,
                 obs::Observer* observer) {
  dynamicanalysis::DynamicOptions opts;
  auto fixtures =
      use_fixtures
          ? std::make_unique<dynamicanalysis::SimFixtures>(opts.seed)
          : nullptr;
  opts.fixtures = fixtures.get();
  // The pipeline's own phase instrumentation (baseline/mitm/frida) lands in
  // the observer's registry; results are byte-identical with or without it.
  opts.observer = observer;

  const auto start = std::chrono::steady_clock::now();
  PassResult result;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const appmodel::App& app : eco.apps(p)) {
      const dynamicanalysis::DynamicReport report =
          dynamicanalysis::RunDynamicAnalysis(app, eco.world(), opts);
      ++result.apps;
      result.destinations += report.destinations.size();
      for (const dynamicanalysis::DestinationReport& d : report.destinations) {
        result.pinned += d.pinned ? 1 : 0;
        result.circumvented += d.circumvented ? 1 : 0;
        result.pii_hits += d.pii.size();
      }
    }
  }
  const auto end = std::chrono::steady_clock::now();
  *out = result;
  if (fixtures_out != nullptr) *fixtures_out = std::move(fixtures);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// One full Study under `scheduler`; returns wall milliseconds and leaves
/// the CSV export (the equality guard) in `csv_out`.
double TimedStudy(const store::Ecosystem& eco, core::SchedulerKind scheduler,
                  int workers, std::string* csv_out, obs::Observer* observer) {
  core::StudyOptions opts;
  opts.scheduler = scheduler;
  opts.threads = workers;
  opts.dynamic.parallel_phases = true;
  opts.observer = observer;
  core::Study study(eco, opts);
  const auto start = std::chrono::steady_clock::now();
  study.Run();
  const auto end = std::chrono::steady_clock::now();
  *csv_out = core::ExportStudyCsv(study);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  const int scale_pct = EnvInt("PINSCOPE_BENCH_SCALE_PCT", 5);
  const int reps = EnvInt("PINSCOPE_BENCH_REPS", 5);

  std::fprintf(stderr, "[pinscope] generating ecosystem at scale %d%%...\n",
               scale_pct);
  store::EcosystemConfig config;
  config.seed = 42;
  config.scale = static_cast<double>(scale_pct) / 100.0;
  const store::Ecosystem eco = store::Ecosystem::Generate(config);

  PassResult off_result, on_result;
  double best_off = 0.0, best_on = 0.0;
  net::ForgedLeafCacheStats forged;
  x509::ValidationCacheStats validation;
  // Collects the pipeline's per-phase histograms across the fixtures-on
  // passes; embedded into the JSON below as the "phases" breakdown.
  obs::Observer observer;
  for (int r = 0; r < reps; ++r) {
    const double off = TimedPass(eco, /*use_fixtures=*/false, &off_result,
                                 nullptr, nullptr);
    std::unique_ptr<dynamicanalysis::SimFixtures> fixtures;
    const double on = TimedPass(eco, /*use_fixtures=*/true, &on_result,
                                &fixtures, &observer);
    if (r == 0 || off < best_off) best_off = off;
    if (r == 0 || on < best_on) {
      best_on = on;
      forged = fixtures->forged_cache_stats();
      validation = fixtures->validation_cache_stats();
    }
    std::fprintf(stderr, "[pinscope] rep %d: fixtures off %.2f ms, on %.2f ms\n",
                 r + 1, off, on);
    if (!(off_result == on_result)) {
      std::fprintf(stderr,
                   "FATAL: fixtures changed results "
                   "(pinned %zu vs %zu, circumvented %zu vs %zu, pii %zu vs %zu)\n",
                   off_result.pinned, on_result.pinned, off_result.circumvented,
                   on_result.circumvented, off_result.pii_hits,
                   on_result.pii_hits);
      return 1;
    }
  }

  // Scheduler dimension: full studies, phase-barrier vs pipelined. Both
  // sides run observer-free so the timings compare schedulers, not
  // instrumentation.
  const int bench_threads =
      EnvInt("PINSCOPE_BENCH_THREADS",
             static_cast<int>(std::max(2u, std::thread::hardware_concurrency())));
  double best_phases = 0.0, best_pipeline = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::string phases_csv, pipeline_csv;
    const double phases_ms = TimedStudy(eco, core::SchedulerKind::kPhases,
                                        bench_threads, &phases_csv, nullptr);
    const double pipeline_ms = TimedStudy(eco, core::SchedulerKind::kPipeline,
                                          bench_threads, &pipeline_csv, nullptr);
    if (r == 0 || phases_ms < best_phases) best_phases = phases_ms;
    if (r == 0 || pipeline_ms < best_pipeline) best_pipeline = pipeline_ms;
    std::fprintf(stderr,
                 "[pinscope] rep %d: scheduler phases %.2f ms, pipeline %.2f ms\n",
                 r + 1, phases_ms, pipeline_ms);
    if (phases_csv != pipeline_csv) {
      std::fprintf(stderr, "FATAL: schedulers disagree on exported bytes\n");
      return 1;
    }
  }
  const double sched_speedup =
      best_pipeline > 0.0 ? best_phases / best_pipeline : 0.0;

  // Untimed instrumented pipeline run: ready-queue high-water mark plus the
  // queue-lock contention probe (obs/mutex.h). 0 / absent on single-core
  // machines, where the scheduler's inline serial path never builds a queue.
  std::uint64_t peak_depth = 0;
  std::uint64_t queue_contended = 0;
  double queue_wait_ms = 0.0;
  {
    obs::Observer sched_observer;
    std::string instrumented_csv;
    (void)TimedStudy(eco, core::SchedulerKind::kPipeline, bench_threads,
                     &instrumented_csv, &sched_observer);
    const obs::MetricsSnapshot snap = sched_observer.metrics().Snapshot();
    if (const auto it = snap.gauges.find("sched.queue_peak_depth");
        it != snap.gauges.end()) {
      peak_depth = it->second;
    }
    if (const auto it = snap.counters.find("lock.sched.queue.contended");
        it != snap.counters.end()) {
      queue_contended = it->second;
    }
    if (const auto it = snap.histograms.find("lock.sched.queue.wait_us");
        it != snap.histograms.end()) {
      queue_wait_ms = it->second.sum / 1000.0;
    }
  }

  const double speedup = best_on > 0.0 ? best_off / best_on : 0.0;
  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"benchmark\": \"dynamic_pipeline\",\n"
      "  \"corpus\": {\"apps\": %zu, \"destinations\": %zu, \"scale_pct\": %d},\n"
      "  \"reps\": %d,\n"
      "  \"cache_off_ms\": %.3f,\n"
      "  \"cache_on_ms\": %.3f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"pinned_destinations\": %zu,\n"
      "  \"forged_leaf_cache\": {\"lookups\": %zu, \"hits\": %zu, \"misses\": %zu,\n"
      "                        \"entries\": %zu, \"hit_rate\": %.4f},\n"
      "  \"validation_cache\": {\"lookups\": %zu, \"hits\": %zu, \"misses\": %zu,\n"
      "                       \"entries\": %zu, \"hit_rate\": %.4f},\n"
      "  \"scheduler\": {\"phases_ms\": %.3f, \"pipeline_ms\": %.3f,\n"
      "                \"speedup\": %.2f, \"workers\": %d,\n"
      "                \"queue_peak_depth\": %llu,\n"
      "                \"queue_lock_contended\": %llu,\n"
      "                \"queue_lock_wait_ms\": %.3f},\n",
      on_result.apps, on_result.destinations, scale_pct, reps, best_off,
      best_on, speedup, on_result.pinned, forged.lookups, forged.hits,
      forged.misses, forged.entries, forged.HitRate(), validation.lookups,
      validation.hits, validation.misses, validation.entries,
      validation.HitRate(), best_phases, best_pipeline, sched_speedup,
      bench_threads,
      static_cast<unsigned long long>(peak_depth),
      static_cast<unsigned long long>(queue_contended), queue_wait_ms);

  return bench::WriteBenchJsonWithPhases("BENCH_dynamic.json", json,
                                         observer.metrics().Snapshot());
}

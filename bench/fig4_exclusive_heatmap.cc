// Figure 4: heatmaps for apps pinning exclusively on one platform.
#include <cstdio>

#include "common.h"

namespace {

using namespace pinscope;

void PrintSide(const core::Study& study, core::PairAnalysis::Mode mode,
               const char* title, const char* column) {
  std::printf("%s:\n", title);
  report::TextTable table;
  table.SetHeader({"App", column});
  int inconsistent = 0, inconclusive = 0;
  for (const core::PairAnalysis& pa : core::AnalyzeCommonPairs(study)) {
    if (pa.mode != mode) continue;
    const double frac = mode == core::PairAnalysis::Mode::kAndroidOnly
                            ? pa.android_pinned_unpinned_on_ios
                            : pa.ios_pinned_unpinned_on_android;
    if (pa.verdict == core::PairAnalysis::Verdict::kInconsistent) {
      table.AddRow({pa.name, report::HeatCell(frac)});
      ++inconsistent;
    } else {
      ++inconclusive;
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(%d inconsistent shown; %d inconclusive — pinned domains never\n"
              " observed on the other platform)\n\n",
              inconsistent, inconclusive);
}

}  // namespace

int main() {
  const core::Study& study = bench::GetStudy();
  std::printf("%s", report::SectionHeader(
                        "Figure 4 — exclusive-platform pinners").c_str());
  std::printf(
      "Paper: of 20 Android-only pinners, 10 inconsistent (7 with 100%% of pinned\n"
      "domains unpinned on iOS) and 10 inconclusive; of 22 iOS-only pinners,\n"
      "7 inconsistent (all at 100%%) and 15 inconclusive.\n\n");
  PrintSide(study, core::PairAnalysis::Mode::kAndroidOnly,
            "(a) Android-only pinners", "% pinned domains unpinned on iOS");
  PrintSide(study, core::PairAnalysis::Mode::kIosOnly,
            "(b) iOS-only pinners", "% pinned domains unpinned on Android");
  return 0;
}

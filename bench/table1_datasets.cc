// Table 1: top-10 app categories per dataset and platform.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common.h"

namespace {

using namespace pinscope;

void PrintColumn(const core::Study& study, store::DatasetId id,
                 appmodel::Platform p) {
  std::map<std::string, int> counts;
  int total = 0;
  for (const core::AppResult* r : study.DatasetResults(id, p)) {
    ++counts[r->app->meta.category];
    ++total;
  }
  std::vector<std::pair<std::string, int>> sorted(counts.begin(), counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::printf("%s %s (n = %d)\n", PlatformName(p).data(),
              store::DatasetName(id).data(), total);
  report::TextTable table;
  table.SetHeader({"Rank", "Category", "Share"});
  for (std::size_t i = 0; i < sorted.size() && i < 10; ++i) {
    table.AddRow({std::to_string(i + 1), sorted[i].first,
                  util::Percent(static_cast<double>(sorted[i].second) / total, 0)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  const core::Study& study = bench::GetStudy();
  std::printf("%s", report::SectionHeader(
                        "Table 1 — app dataset category composition").c_str());
  std::printf(
      "Paper (top-1 shares): Android Random Education 12%% / Popular Games 36%% /\n"
      "Common Games 18%%; iOS Common Games 18%% / Popular Games 21%% / Random Games 15%%.\n\n");
  for (const store::DatasetId id : store::AllDatasets()) {
    for (const appmodel::Platform p :
         {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
      PrintColumn(study, id, p);
    }
  }
  return 0;
}

// Ablation: the §4.2.2 TLS 1.3 heuristics vs a naive classifier.
//
// In TLS 1.3 every encrypted record is disguised as application data, so the
// natural TLS 1.2 rule — "any application-data record ⇒ the connection was
// used" — sees even a pin-failure alert as usage. Under that naive rule a
// pinned destination appears 'used' in the MITM run and the differential
// detector clears it. This bench quantifies how much pinning the paper's
// heuristics rescue.
#include <cstdio>
#include <map>

#include "common.h"
#include "dynamicanalysis/device.h"
#include "dynamicanalysis/detector.h"
#include "net/mitm_proxy.h"

namespace {

using namespace pinscope;

// The TLS 1.2 rule applied indiscriminately.
bool NaiveIsUsed(const net::Flow& flow) {
  for (const tls::Record& r : flow.records) {
    if (r.wire_type == tls::ContentType::kApplicationData) return true;
  }
  return false;
}

// DetectPinning re-implemented over a pluggable used-classifier.
template <typename UsedFn>
int CountPinningApps(const core::Study& study, appmodel::Platform p,
                     UsedFn&& used) {
  const store::Ecosystem& eco = study.ecosystem();
  net::MitmProxy proxy;
  const dynamicanalysis::DeviceEmulator device =
      p == appmodel::Platform::kAndroid
          ? dynamicanalysis::DeviceEmulator::Pixel3(&proxy.CaCertificate())
          : dynamicanalysis::DeviceEmulator::IPhoneX(&proxy.CaCertificate());

  int pinning_apps = 0;
  for (const core::AppResult* r : study.AllResults(p)) {
    util::Rng rng(31337 ^ util::StableHash64(r->app->meta.app_id));
    dynamicanalysis::RunOptions base_opts;
    util::Rng rng_a = rng.Fork("baseline");
    const net::Capture baseline =
        device.RunApp(*r->app, eco.world(), base_opts, rng_a);
    dynamicanalysis::RunOptions mitm_opts;
    mitm_opts.proxy = &proxy;
    util::Rng rng_b = rng.Fork("mitm");
    const net::Capture mitm = device.RunApp(*r->app, eco.world(), mitm_opts, rng_b);

    // Per-destination differential with the supplied classifier.
    struct Agg {
      bool used_baseline = false;
      bool seen_mitm = false;
      bool any_mitm_used_or_open = false;
    };
    std::map<std::string, Agg> by_host;
    const auto exclusions = dynamicanalysis::ExclusionRules::ForIos(
        r->app->behavior.associated_domains);
    for (const net::Flow& f : baseline.flows) {
      if (f.sni.empty() ||
          (p == appmodel::Platform::kIos && exclusions.IsExcluded(f.sni))) {
        continue;
      }
      if (used(f)) by_host[f.sni].used_baseline = true;
    }
    for (const net::Flow& f : mitm.flows) {
      if (f.sni.empty() ||
          (p == appmodel::Platform::kIos && exclusions.IsExcluded(f.sni))) {
        continue;
      }
      Agg& agg = by_host[f.sni];
      agg.seen_mitm = true;
      if (used(f) || f.closure == tls::Closure::kOpen) {
        agg.any_mitm_used_or_open = true;
      }
    }
    for (const auto& [host, agg] : by_host) {
      if (agg.used_baseline && agg.seen_mitm && !agg.any_mitm_used_or_open) {
        ++pinning_apps;
        break;
      }
    }
  }
  return pinning_apps;
}

}  // namespace

int main() {
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Ablation — TLS 1.3 used-connection heuristics").c_str());
  std::printf(
      "Rule A (naive, TLS 1.2-style): any application-data wire record ⇒ used.\n"
      "Rule B (§4.2.2): TLS 1.3 client must send >2 app-data records, or a 2nd\n"
      "record that is not alert-sized.\n\n");

  report::TextTable table;
  table.SetHeader({"Platform", "Pinning apps (naive rule)",
                   "Pinning apps (paper heuristics)"});
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const int naive = CountPinningApps(study, p, NaiveIsUsed);
    const int paper = CountPinningApps(
        study, p, [](const net::Flow& f) { return dynamicanalysis::IsUsedConnection(f); });
    table.AddRow({std::string(PlatformName(p)), std::to_string(naive),
                  std::to_string(paper)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape check: the naive rule misreads TLS 1.3 pin-failure alerts as usage\n"
      "and loses most pinning verdicts; the paper's heuristics recover them.\n");
  return 0;
}

// Ablation: detector coverage — the paper's differential technique vs the
// Spinner baseline (Stone et al., ACSAC'17) on the same corpus.
//
// §2.2: "their technique only finds apps that pin intermediate or root
// certificates in the certificate chain. In contrast, our dynamic and static
// analysis techniques cover all pinned certificates."
#include <cstdio>
#include <set>

#include "common.h"
#include "dynamicanalysis/spinner.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Ablation — differential detector vs Spinner baseline").c_str());

  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    int differential_apps = 0;
    int spinner_apps = 0;
    int both = 0;
    int diff_only = 0;
    int vulnerable = 0;
    std::set<std::string> diff_dests, spinner_dests;

    util::Rng rng(99);
    for (const core::AppResult* r : study.AllResults(p)) {
      const bool diff_pins = r->dynamic_report.AppPins();
      for (const std::string& host : r->dynamic_report.PinnedDestinations()) {
        diff_dests.insert(host);
      }
      bool spinner_pins = false;
      for (const auto& probe : dynamicanalysis::RunSpinnerProbes(
               *r->app, study.ecosystem().world(), rng)) {
        if (probe.verdict == dynamicanalysis::SpinnerVerdict::kCaPinningDetected) {
          spinner_pins = true;
          spinner_dests.insert(probe.hostname);
        }
        if (probe.verdict == dynamicanalysis::SpinnerVerdict::kVulnerable) {
          ++vulnerable;
        }
      }
      differential_apps += diff_pins;
      spinner_apps += spinner_pins;
      both += diff_pins && spinner_pins;
      diff_only += diff_pins && !spinner_pins;
    }

    report::TextTable table;
    table.SetHeader({"Metric", "Differential (this work)", "Spinner (baseline)"});
    table.AddRow({"Pinning apps detected", std::to_string(differential_apps),
                  std::to_string(spinner_apps)});
    table.AddRow({"Pinned destinations", std::to_string(diff_dests.size()),
                  std::to_string(spinner_dests.size())});
    std::printf("%s:\n%s", PlatformName(p).data(), table.Render().c_str());
    std::printf(
        "  apps found by both: %d; found ONLY by the differential detector: %d\n"
        "  (Spinner's blind spot: leaf/key pins and bundled custom trust)\n"
        "  hostname-validation vulnerabilities found by Spinner probes: %d\n"
        "  (§5.3.4: the paper found no pinning app subverting validation)\n\n",
        both, diff_only, vulnerable);
  }
  return 0;
}

// §3 — dataset overview numbers reported in the paper's text: dataset sizes,
// store collisions, unique app counts, and the §4.2.2 SNI-coverage figure.
#include <cstdio>
#include <set>

#include "common.h"
#include "dynamicanalysis/device.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();
  const store::Ecosystem& eco = study.ecosystem();

  std::printf("%s", report::SectionHeader("§3 — dataset overview").c_str());
  std::printf(
      "Paper: 575 Common pairs; 1,000 Popular and 1,000 Random per platform;\n"
      "11 Android and 60 iOS Common/Popular collisions; no Random collisions;\n"
      "2,564 unique Android apps, 2,515 unique iOS apps, 5,079 total.\n\n");

  report::TextTable table;
  table.SetHeader({"Metric", "Android", "iOS"});

  std::vector<std::string> sizes_row = {"Dataset sizes (C/P/R)"};
  std::vector<std::string> collisions_row = {"Common∩Popular collisions"};
  std::vector<std::string> random_row = {"Random collisions with others"};
  std::vector<std::string> unique_row = {"Unique apps"};
  int total_unique = 0;

  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const auto& common = eco.dataset(store::DatasetId::kCommon, p).app_indices;
    const auto& popular = eco.dataset(store::DatasetId::kPopular, p).app_indices;
    const auto& random = eco.dataset(store::DatasetId::kRandom, p).app_indices;
    sizes_row.push_back(std::to_string(common.size()) + " / " +
                        std::to_string(popular.size()) + " / " +
                        std::to_string(random.size()));

    const std::set<std::size_t> common_set(common.begin(), common.end());
    const std::set<std::size_t> popular_set(popular.begin(), popular.end());
    int cp_collisions = 0;
    for (std::size_t idx : popular) {
      if (common_set.contains(idx)) ++cp_collisions;
    }
    collisions_row.push_back(std::to_string(cp_collisions));

    int random_collisions = 0;
    for (std::size_t idx : random) {
      if (common_set.contains(idx) || popular_set.contains(idx)) {
        ++random_collisions;
      }
    }
    random_row.push_back(std::to_string(random_collisions));

    std::set<std::size_t> unique(common.begin(), common.end());
    unique.insert(popular.begin(), popular.end());
    unique.insert(random.begin(), random.end());
    unique_row.push_back(std::to_string(unique.size()));
    total_unique += static_cast<int>(unique.size());
  }
  table.AddRow(std::move(sizes_row));
  table.AddRow(std::move(collisions_row));
  table.AddRow(std::move(random_row));
  table.AddRow(std::move(unique_row));
  std::printf("%s\n", table.Render().c_str());
  std::printf("Total unique apps across platforms: %d (paper: 5,079)\n\n",
              total_unique);

  // §4.2.2: "99% of the TLS traffic in our experiments have a non-empty SNI".
  double flows = 0, with_sni = 0;
  util::Rng rng(808);
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const dynamicanalysis::DeviceEmulator device =
        p == appmodel::Platform::kAndroid
            ? dynamicanalysis::DeviceEmulator::Pixel3(nullptr)
            : dynamicanalysis::DeviceEmulator::IPhoneX(nullptr);
    const auto& apps = eco.apps(p);
    const auto indices = rng.SampleIndices(apps.size(), 150);
    for (std::size_t idx : indices) {
      util::Rng run_rng(1000 + idx);
      const auto cap = device.RunApp(apps[idx], eco.world(),
                                     dynamicanalysis::RunOptions{}, run_rng);
      for (const net::Flow& f : cap.flows) {
        flows += 1;
        with_sni += f.sni.empty() ? 0 : 1;
      }
    }
  }
  std::printf("SNI coverage across sampled captures: %.1f%% (paper: 99%%)\n",
              flows == 0 ? 0.0 : 100.0 * with_sni / flows);
  return 0;
}

// Table 6 + §5.3.1-§5.3.3: PKI of pinned destinations, CA-vs-leaf pins,
// self-signed outliers, and key-reusing renewals.
#include <cstdio>

#include "common.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Table 6 — PKI used by pinned destinations").c_str());
  std::printf("Paper: Android 163 default / 4 custom / 11 unavailable;\n"
              "       iOS     238 default / 1 custom / 14 unavailable.\n\n");

  report::TextTable table;
  table.SetHeader({"Platform", "Default PKI", "Custom PKI", "Data Unavailable",
                   "(of custom: self-signed)"});
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const core::PkiCounts counts = core::ComputePkiCounts(study, p);
    table.AddRow({std::string(PlatformName(p)), std::to_string(counts.default_pki),
                  std::to_string(counts.custom_pki),
                  std::to_string(counts.unavailable),
                  std::to_string(counts.self_signed)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("Self-signed pinned certificates (paper: validities of 27 and 10 years):\n");
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const core::PkiCounts counts = core::ComputePkiCounts(study, p);
    for (std::int64_t days : counts.self_signed_validity_days) {
      std::printf("  %s: self-signed pinned destination valid for %.1f years\n",
                  PlatformName(p).data(), static_cast<double>(days) / 365.0);
    }
  }

  std::printf("%s", report::SectionHeader(
                        "§5.3.2 — root vs leaf certificates pinned").c_str());
  std::printf("Paper: ~31%% of pinning apps have a static↔dynamic certificate match;\n"
              "of the matched certificates, 80/110 are CAs, 30/110 leaves.\n\n");
  int total_ca = 0, total_leaf = 0, total_spki = 0, total_raw = 0, total_rotated = 0;
  report::TextTable certs;
  certs.SetHeader({"Platform", "Pinning apps", "Apps w/ match", "CA certs",
                   "Leaf certs"});
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const core::CertMatchStats stats = core::ComputeCertMatches(study, p);
    certs.AddRow({std::string(PlatformName(p)), std::to_string(stats.pinning_apps),
                  std::to_string(stats.apps_with_match),
                  std::to_string(stats.ca_certs), std::to_string(stats.leaf_certs)});
    total_ca += stats.ca_certs;
    total_leaf += stats.leaf_certs;
    total_spki += stats.leaf_spki_pinned;
    total_raw += stats.leaf_raw_embedded;
    total_rotated += stats.rotated_still_pinned;
  }
  std::printf("%s\n", certs.Render().c_str());
  if (total_ca + total_leaf > 0) {
    std::printf("Measured CA share of matched certificates: %.0f%% (paper ~73%%)\n",
                100.0 * total_ca / (total_ca + total_leaf));
  }

  std::printf("%s", report::SectionHeader(
                        "§5.3.3 — whole certificate vs its key").c_str());
  std::printf("Paper: 24/30 pinned leaves pinned via SPKI hashes; of 6 raw-embedded\n"
              "leaves, 5 destinations served renewed certificates during testing and\n"
              "still pinned — i.e. public keys were pinned and reused across renewals.\n\n");
  std::printf("Measured: %d leaf pins via SPKI hash, %d raw-embedded leaf certs,\n"
              "of which %d destinations served a renewed leaf yet stayed pinned.\n",
              total_spki, total_raw, total_rotated);
  return 0;
}

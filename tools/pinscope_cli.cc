// pinscope — command-line front-end to the measurement toolkit.
//
//   pinscope generate [--scale S] [--seed N]
//       Generate an ecosystem and print its corpus summary.
//   pinscope study [--scale S] [--seed N] [--json FILE] [--csv FILE]
//       Run the full measurement study; print Table-3-style prevalence and
//       optionally export the per-app dataset.
//   pinscope audit APP_ID [--scale S] [--seed N]
//       Static + dynamic + circumvention audit of a single app.
//   pinscope tables [--scale S] [--seed N]
//       Print every paper table from a fresh study.
//   pinscope help
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/analyses.h"
#include "core/study.h"
#include "dynamicanalysis/pipeline.h"
#include "report/csv_writer.h"
#include "report/json_writer.h"
#include "report/table.h"
#include "staticanalysis/static_report.h"
#include "store/generator.h"
#include "util/strings.h"

namespace {

using namespace pinscope;

struct CliOptions {
  std::string command;
  std::vector<std::string> positional;
  double scale = 0.1;
  std::uint64_t seed = 42;
  std::string json_path;
  std::string csv_path;
};

int Usage() {
  std::printf(
      "pinscope — certificate-pinning measurement toolkit\n\n"
      "usage: pinscope <command> [options]\n\n"
      "commands:\n"
      "  generate            generate an ecosystem, print corpus summary\n"
      "  study               run the full study, print prevalence\n"
      "  audit APP_ID        audit one app (static + dynamic + circumvention)\n"
      "  tables              print every paper table\n"
      "  help                this text\n\n"
      "options:\n"
      "  --scale S           corpus scale, 0 < S <= 1 (default 0.1)\n"
      "  --seed N            generation seed (default 42)\n"
      "  --json FILE         (study) export per-app records as JSON Lines\n"
      "  --csv FILE          (study) export per-destination rows as CSV\n");
  return 2;
}

std::optional<CliOptions> ParseArgs(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  CliOptions opts;
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--scale") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.scale = std::atof(v->c_str());
      if (opts.scale <= 0.0 || opts.scale > 1.0) return std::nullopt;
    } else if (arg == "--seed") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--json") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.json_path = *v;
    } else if (arg == "--csv") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.csv_path = *v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return std::nullopt;
    } else {
      opts.positional.push_back(arg);
    }
  }
  return opts;
}

store::Ecosystem Generate(const CliOptions& opts) {
  store::EcosystemConfig config;
  config.seed = opts.seed;
  config.scale = opts.scale;
  std::fprintf(stderr, "[pinscope] generating ecosystem (scale %.2f, seed %llu)\n",
               config.scale, static_cast<unsigned long long>(config.seed));
  return store::Ecosystem::Generate(config);
}

int CmdGenerate(const CliOptions& opts) {
  const store::Ecosystem eco = Generate(opts);
  report::TextTable table;
  table.SetHeader({"Dataset", "Android", "iOS"});
  for (const store::DatasetId id : store::AllDatasets()) {
    table.AddRow({std::string(store::DatasetName(id)),
                  std::to_string(eco.dataset(id, appmodel::Platform::kAndroid).size()),
                  std::to_string(eco.dataset(id, appmodel::Platform::kIos).size())});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nservers: %zu   CT-logged certificates: %zu   common pairs: %zu\n",
              eco.world().size(), eco.ct_log().size(), eco.common_pairs().size());
  return 0;
}

void ExportJson(const core::Study& study, const std::string& path) {
  std::ofstream out(path);
  int records = 0;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const core::AppResult* r : study.AllResults(p)) {
      report::JsonWriter w;
      w.BeginObject();
      w.Key("app_id");
      w.String(r->app->meta.app_id);
      w.Key("platform");
      w.String(PlatformName(p));
      w.Key("pins_at_runtime");
      w.Bool(r->dynamic_report.AppPins());
      w.Key("potential_pinning");
      w.Bool(r->static_report.PotentialPinning());
      w.Key("pinned_destinations");
      w.BeginArray();
      for (const auto& host : r->dynamic_report.PinnedDestinations()) w.String(host);
      w.EndArray();
      w.EndObject();
      out << w.TakeString() << "\n";
      ++records;
    }
  }
  std::printf("wrote %d JSON records to %s\n", records, path.c_str());
}

void ExportCsv(const core::Study& study, const std::string& path) {
  report::CsvWriter csv;
  csv.SetHeader({"app_id", "platform", "hostname", "pinned", "circumvented"});
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const core::AppResult* r : study.AllResults(p)) {
      for (const auto& dest : r->dynamic_report.destinations) {
        csv.AddRow({r->app->meta.app_id, std::string(PlatformName(p)),
                    dest.hostname, dest.pinned ? "1" : "0",
                    dest.circumvented ? "1" : "0"});
      }
    }
  }
  std::ofstream out(path);
  const std::size_t rows = csv.rows();
  out << csv.TakeString();
  std::printf("wrote %zu CSV rows to %s\n", rows, path.c_str());
}

int CmdStudy(const CliOptions& opts) {
  const store::Ecosystem eco = Generate(opts);
  core::Study study(eco);
  std::fprintf(stderr, "[pinscope] running measurement pipeline\n");
  study.Run();

  report::TextTable table;
  table.SetHeader({"Dataset", "Platform", "Apps", "Dynamic pinning",
                   "Static potential", "NSC pinning"});
  for (const store::DatasetId id : store::AllDatasets()) {
    for (const appmodel::Platform p :
         {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
      const core::PrevalenceRow row = core::ComputePrevalence(study, id, p);
      table.AddRow(
          {std::string(store::DatasetName(id)), std::string(PlatformName(p)),
           std::to_string(row.total),
           std::to_string(row.dynamic_pinning) + " (" +
               util::Percent(static_cast<double>(row.dynamic_pinning) /
                                 std::max(row.total, 1),
                             1) +
               ")",
           std::to_string(row.embedded_static),
           p == appmodel::Platform::kAndroid ? std::to_string(row.config_pinning)
                                             : std::string("-")});
    }
  }
  std::printf("%s", table.Render().c_str());

  if (!opts.json_path.empty()) ExportJson(study, opts.json_path);
  if (!opts.csv_path.empty()) ExportCsv(study, opts.csv_path);
  return 0;
}

int CmdAudit(const CliOptions& opts) {
  if (opts.positional.empty()) {
    std::fprintf(stderr, "audit requires an APP_ID\n");
    return 2;
  }
  const std::string& app_id = opts.positional.front();
  const store::Ecosystem eco = Generate(opts);

  const appmodel::App* target = nullptr;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const appmodel::App& app : eco.apps(p)) {
      if (app.meta.app_id == app_id) target = &app;
    }
  }
  if (target == nullptr) {
    std::fprintf(stderr, "unknown app id '%s' (try `pinscope generate` to list "
                         "dataset sizes, or a different seed/scale)\n",
                 app_id.c_str());
    return 1;
  }

  staticanalysis::StaticAnalysisOptions sopts;
  sopts.ct_log = &eco.ct_log();
  const auto sreport = staticanalysis::AnalyzeStatically(*target, sopts);
  std::printf("%s (%s, %s)\n", target->meta.display_name.c_str(),
              target->meta.app_id.c_str(), PlatformName(target->meta.platform).data());
  std::printf("  static: %zu certs, %zu pins (%zu CT-resolved), NSC pins: %s\n",
              sreport.scan.certificates.size(), sreport.pins_total,
              sreport.pins_resolved, sreport.ConfigPinning() ? "yes" : "no");

  const auto dreport = dynamicanalysis::RunDynamicAnalysis(*target, eco.world());
  std::printf("  dynamic: %s\n", dreport.AppPins() ? "PINS at run time"
                                                   : "no pinning observed");
  for (const auto& dest : dreport.destinations) {
    std::printf("    %-34s %s%s\n", dest.hostname.c_str(),
                dest.pinned ? "PINNED" : "not pinned",
                dest.pinned ? (dest.circumvented ? " (circumventable)"
                                                 : " (opaque: custom stack)")
                            : "");
  }
  return 0;
}

int CmdTables(const CliOptions& opts) {
  const store::Ecosystem eco = Generate(opts);
  core::Study study(eco);
  study.Run();

  std::printf("%s", report::SectionHeader("Prevalence (Table 3)").c_str());
  for (const store::DatasetId id : store::AllDatasets()) {
    for (const appmodel::Platform p :
         {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
      const auto row = core::ComputePrevalence(study, id, p);
      std::printf("  %-7s %-7s dyn %3d  static %3d  nsc %3d  (n=%d)\n",
                  store::DatasetName(id).data(), PlatformName(p).data(),
                  row.dynamic_pinning, row.embedded_static, row.config_pinning,
                  row.total);
    }
  }

  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    std::printf("%s", report::SectionHeader(
                          std::string("Pinning categories (Tables 4/5) — ") +
                          std::string(PlatformName(p))).c_str());
    for (const auto& row : core::ComputePinningByCategory(study, p, 5, 3)) {
      std::printf("  %-20s %5.1f%%  (%d apps)\n", row.category.c_str(),
                  row.pinning_pct, row.pinning_apps);
    }
    const auto pki = core::ComputePkiCounts(study, p);
    std::printf("%s", report::SectionHeader(
                          std::string("PKI (Table 6) — ") +
                          std::string(PlatformName(p))).c_str());
    std::printf("  default %d / custom %d / unavailable %d (self-signed %d)\n",
                pki.default_pki, pki.custom_pki, pki.unavailable, pki.self_signed);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = ParseArgs(argc, argv);
  if (!opts.has_value() || opts->command == "help") return Usage();
  try {
    if (opts->command == "generate") return CmdGenerate(*opts);
    if (opts->command == "study") return CmdStudy(*opts);
    if (opts->command == "audit") return CmdAudit(*opts);
    if (opts->command == "tables") return CmdTables(*opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", opts->command.c_str());
  return Usage();
}

// pinscope — command-line front-end to the measurement toolkit.
//
//   pinscope generate [--scale S] [--seed N]
//       Generate an ecosystem and print its corpus summary.
//   pinscope study [--scale S] [--seed N] [--threads T] [--json FILE] [--csv FILE]
//       Run the full measurement study; print Table-3-style prevalence and
//       optionally export the per-app dataset.
//   pinscope audit APP_ID [--scale S] [--seed N]
//       Static + dynamic + circumvention audit of a single app.
//   pinscope tables [--scale S] [--seed N]
//       Print every paper table from a fresh study.
//   pinscope longitudinal [--scale S] [--seed N] [--snapshot K]
//       Advance the store through K churn epochs and print the pin-rotation /
//       key-reuse table (EXPERIMENTS.md §longitudinal).
//   pinscope help
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cli/cli_options.h"
#include "core/analyses.h"
#include "core/corpus_source.h"
#include "core/export.h"
#include "core/stream_export.h"
#include "core/stream_study.h"
#include "core/study.h"
#include "dynamicanalysis/pipeline.h"
#include "obs/autopsy.h"
#include "obs/obs.h"
#include "obs/process.h"
#include "obs/telemetry.h"
#include "obs/timeline.h"
#include "report/perf_report.h"
#include "report/run_report.h"
#include "report/table.h"
#include "staticanalysis/static_report.h"
#include "store/generator.h"
#include "util/strings.h"

namespace {

using namespace pinscope;
using cli::CliOptions;

core::StudyOptions StudyOptionsFor(const CliOptions& opts,
                                   obs::Observer* observer) {
  core::StudyOptions sopts;
  sopts.threads = opts.threads;
  // Results are thread-count invariant, so parallel phases are safe to turn
  // on whenever the user did not pin the study to one thread.
  sopts.dynamic.parallel_phases = opts.threads != 1;
  sopts.scheduler = opts.scheduler == "phases" ? core::SchedulerKind::kPhases
                                               : core::SchedulerKind::kPipeline;
  sopts.queue_depth = static_cast<std::size_t>(opts.queue_depth);
  sopts.scan_cache = opts.scan_cache;
  sopts.sim_cache = opts.sim_cache;
  sopts.cache_dir = opts.cache_dir;
  sopts.observer = observer;
  return sopts;
}

/// Builds and starts the live-telemetry sampler when any live surface was
/// requested: a progress mode, a heartbeat file, or a metrics file (which
/// telemetry refreshes per tick instead of once at exit). Returns nullptr
/// when every surface is off — the study then runs with zero telemetry
/// overhead. The caller attaches it via StudyOptions::telemetry and Stop()s
/// it (or lets the destructor) before the final exports.
std::unique_ptr<obs::Telemetry> StartTelemetry(const CliOptions& opts,
                                               obs::Observer& observer) {
  if (opts.progress == "off" && opts.heartbeat_path.empty() &&
      opts.metrics_path.empty()) {
    return nullptr;
  }
  obs::TelemetryOptions topts;
  topts.interval_ms = opts.telemetry_interval_ms;
  topts.progress = obs::ParseProgressMode(opts.progress)
                       .value_or(obs::ProgressMode::kOff);
  topts.heartbeat_path = opts.heartbeat_path;
  topts.metrics_path = opts.metrics_path;
  auto telemetry =
      std::make_unique<obs::Telemetry>(&observer.metrics(), topts);
  telemetry->Start();
  return telemetry;
}

/// Prints the --summary table and writes --metrics-out / --trace-out /
/// --log-out files. A `.prom` metrics path selects the OpenMetrics text
/// format instead of JSON.
void EmitObservability(obs::Observer& observer, const CliOptions& opts) {
  obs::PublishPeakRss(&observer.metrics());
  // Published only when the trace cap actually dropped events, so a normal
  // (unbounded or under-cap) run's summary is unchanged.
  if (const std::size_t dropped = observer.trace().DroppedCount();
      dropped > 0) {
    observer.metrics()
        .gauge("trace.dropped_events")
        .Set(static_cast<std::uint64_t>(dropped));
    std::fprintf(stderr,
                 "warning: trace buffer full — %zu event(s) dropped "
                 "(cap %zu); raise the cap or write metrics-only\n",
                 dropped, observer.trace().max_events());
  }
  const obs::MetricsSnapshot snapshot = observer.metrics().Snapshot();
  if (opts.summary) std::printf("%s", obs::RenderSummary(snapshot).c_str());
  if (!opts.metrics_path.empty()) {
    const bool open_metrics = util::EndsWith(opts.metrics_path, ".prom");
    std::ofstream out(opts.metrics_path);
    out << (open_metrics ? obs::WriteMetricsOpenMetrics(snapshot)
                         : obs::WriteMetricsJson(snapshot));
    std::printf("wrote metrics %s to %s\n", open_metrics ? "OpenMetrics" : "JSON",
                opts.metrics_path.c_str());
  }
  if (!opts.trace_path.empty()) {
    std::ofstream out(opts.trace_path);
    out << observer.trace().ToJson();
    std::printf("wrote Chrome trace (%zu events) to %s\n",
                observer.trace().EventCount(), opts.trace_path.c_str());
  }
  if (!opts.log_path.empty() && observer.log() != nullptr) {
    std::ofstream out(opts.log_path);
    out << observer.log()->ToJsonl();
    std::printf("wrote decision journal (%zu events) to %s\n",
                observer.log()->EventCount(), opts.log_path.c_str());
  }
}

/// Did the command line ask for any run-autopsy artifact? A timeline is
/// attached to the study only then — it is cheap, but attaching nothing when
/// nothing was requested keeps the default run untouched.
bool WantsAutopsy(const CliOptions& opts) {
  return !opts.perf_report_path.empty() || !opts.folded_path.empty() ||
         opts.command == "autopsy";
}

/// Builds the timeline the perf surfaces consume, or nullptr when none was
/// requested. Warns when the phase-barrier scheduler is selected: it has no
/// per-item chains, so the timeline would stay empty.
std::unique_ptr<obs::Timeline> StartTimeline(const CliOptions& opts) {
  if (!WantsAutopsy(opts)) return nullptr;
  if (opts.scheduler == "phases") {
    std::fprintf(stderr,
                 "warning: --scheduler=phases has no per-app stage chains; "
                 "the run autopsy will be empty (use the pipeline "
                 "scheduler)\n");
  }
  obs::TimelineOptions topts;
  topts.per_worker_cap = static_cast<std::size_t>(opts.timeline_cap);
  return std::make_unique<obs::Timeline>(topts);
}

/// Resolves a timeline item key (TelemetryKey: platform rank << 48 |
/// universe index) to platform / app-id labels against the live ecosystem.
obs::ItemResolver ResolverFor(const store::Ecosystem& eco) {
  return [&eco](std::uint64_t key) {
    const auto p = (key >> 48) == 0 ? appmodel::Platform::kAndroid
                                    : appmodel::Platform::kIos;
    const auto index =
        static_cast<std::size_t>(key & ((std::uint64_t{1} << 48) - 1));
    obs::ItemLabel label;
    label.platform = std::string(appmodel::PlatformName(p));
    const auto& apps = eco.apps(p);
    label.app = index < apps.size() ? apps[index].meta.app_id
                                    : "app#" + std::to_string(index);
    return label;
  };
}

/// Analyzes the finished timeline and writes every requested perf surface:
/// the autopsy Markdown to stdout when `print` is set (the `autopsy`
/// command), --perf-report-out Markdown + JSON twin, and --folded-out
/// collapsed stacks.
void EmitPerfArtifacts(const obs::Timeline* timeline,
                       const store::Ecosystem& eco, obs::Observer& observer,
                       const CliOptions& opts, bool print) {
  if (timeline == nullptr) return;
  const obs::MetricsSnapshot snapshot = observer.metrics().Snapshot();
  const obs::Autopsy autopsy = obs::Analyze(*timeline, &snapshot);
  report::PerfReportInput input;
  input.autopsy = &autopsy;
  input.resolver = ResolverFor(eco);
  if (print) std::printf("%s", report::WritePerfReportMarkdown(input).c_str());
  if (!opts.perf_report_path.empty()) {
    {
      std::ofstream out(opts.perf_report_path);
      out << report::WritePerfReportMarkdown(input);
    }
    const std::string json_path =
        report::PerfReportJsonPathFor(opts.perf_report_path);
    {
      std::ofstream out(json_path);
      out << report::WritePerfReportJson(input);
    }
    std::printf("wrote perf report to %s (and %s)\n",
                opts.perf_report_path.c_str(), json_path.c_str());
  }
  if (!opts.folded_path.empty()) {
    std::ofstream out(opts.folded_path);
    out << obs::WriteFoldedStacks(*timeline, input.resolver);
    std::printf("wrote folded stacks to %s\n", opts.folded_path.c_str());
  }
}

/// Writes the --report-out run report (Markdown plus a JSON companion next
/// to it) from the study's verdicts, the metrics snapshot, and the journal.
void EmitRunReportVerdicts(const std::vector<report::AppVerdict>& verdicts,
                           const obs::Observer& observer,
                           const CliOptions& opts) {
  if (opts.report_path.empty()) return;
  const obs::MetricsSnapshot snapshot = observer.metrics().Snapshot();
  std::vector<obs::LogEvent> events;
  if (observer.log() != nullptr) events = observer.log()->SortedEvents();
  report::RunReportInput input;
  input.verdicts = verdicts;
  input.metrics = &snapshot;
  input.events = &events;
  {
    std::ofstream out(opts.report_path);
    out << report::WriteRunReportMarkdown(input);
  }
  const std::string json_path = report::ReportJsonPathFor(opts.report_path);
  {
    std::ofstream out(json_path);
    out << report::WriteRunReportJson(input);
  }
  std::printf("wrote run report to %s (and %s)\n", opts.report_path.c_str(),
              json_path.c_str());
}

void EmitRunReport(const core::Study& study, const obs::Observer& observer,
                   const CliOptions& opts) {
  if (opts.report_path.empty()) return;
  EmitRunReportVerdicts(core::CollectAppVerdicts(study), observer, opts);
}

void PrintChurn(const store::SnapshotChurn& c) {
  std::fprintf(stderr,
               "[pinscope] snapshot %d: %zu hosts renewed (%zu key-reuse), "
               "%zu apps updated, %zu pins rotated, %zu stale pins, "
               "%zu apps changed\n",
               c.snapshot, c.hosts_renewed, c.keys_reused, c.apps_updated,
               c.pins_rotated, c.stale_pins, c.changed_apps.size());
}

/// Applies `count` churn epochs to `eco`, narrating each on stderr.
void ApplySnapshots(store::Ecosystem& eco, int count) {
  for (int s = 0; s < count; ++s) PrintChurn(eco.AdvanceSnapshot());
}

int Usage() {
  std::printf(
      "pinscope — certificate-pinning measurement toolkit\n\n"
      "usage: pinscope <command> [options]\n\n"
      "commands:\n"
      "  generate            generate an ecosystem, print corpus summary\n"
      "  study               run the full study, print prevalence\n"
      "  audit APP_ID        audit one app (static + dynamic + circumvention)\n"
      "  tables              print every paper table\n"
      "  autopsy             run the study with the interval timeline attached\n"
      "                      and print the causal profile: critical path,\n"
      "                      per-worker idle attribution, slowest apps, and\n"
      "                      contended locks\n"
      "  longitudinal        advance the store through churn epochs and print\n"
      "                      the pin-rotation / key-reuse table\n"
      "  help                this text\n\n"
      "options:\n"
      "  --scale S           corpus scale, 0 < S <= 1 (default 0.1)\n"
      "  --seed N            generation seed (default 42)\n"
      "  --threads T         study worker threads; 0 = all hardware threads\n"
      "                      (default 0; results are identical for every T)\n"
      "  --scheduler=KIND    study execution model: 'pipeline' (barrier-free\n"
      "                      per-app stage chains; apps overlap across static/\n"
      "                      dynamic analysis and results stream out as they\n"
      "                      finish) or 'phases' (corpus-wide fan-out per\n"
      "                      platform). Default pipeline; results are\n"
      "                      byte-identical either way (DESIGN.md §13)\n"
      "  --queue-depth N     pipeline ready-queue capacity; bounds buffered\n"
      "                      work and applies backpressure (0 = 2x workers;\n"
      "                      results are identical for every N)\n"
      "  --scan-cache=on|off corpus-wide static-scan cache: shared SDK files\n"
      "                      are scanned once per study (default on; results\n"
      "                      are byte-identical either way)\n"
      "  --sim-cache=on|off  study-wide connection-simulation fixtures: shared\n"
      "                      proxy CA, forged-leaf cache, root stores, and a\n"
      "                      chain-validation memo (default on; results are\n"
      "                      byte-identical either way)\n"
      "  --json FILE         (study) export per-app records as JSON Lines\n"
      "  --csv FILE          (study) export per-destination rows as CSV\n"
      "  --metrics-out FILE  (study/tables) write pipeline metrics — counters,\n"
      "                      cache hit-rate gauges, per-phase histograms — as\n"
      "                      JSON, or as OpenMetrics/Prometheus text format\n"
      "                      when FILE ends in .prom (see DESIGN.md §11).\n"
      "                      With live telemetry the file is atomically\n"
      "                      refreshed every tick, not just at exit (§16)\n"
      "  --progress MODE     live progress: off (default), plain (one line\n"
      "                      per tick, pipeable), or tty (rewritten status\n"
      "                      line). Purely observational — results are\n"
      "                      byte-identical with progress on or off\n"
      "  --heartbeat-out FILE  write a machine-readable heartbeat: one JSON\n"
      "                      line per telemetry tick with done/total, RSS,\n"
      "                      queue depth, and per-phase p50/p90/p99 (µs)\n"
      "  --telemetry-interval-ms N  telemetry sampler tick period\n"
      "                      (default 250)\n"
      "  --trace-out FILE    (study/tables) write a Chrome trace_event JSON of\n"
      "                      study/app/phase spans; open in chrome://tracing\n"
      "                      or https://ui.perfetto.dev\n"
      "  --log-out FILE      (study/tables) write the deterministic decision\n"
      "                      journal as JSON Lines; byte-identical for every\n"
      "                      --threads value (see DESIGN.md §12)\n"
      "  --log-level LEVEL   journal severity floor: debug|info|decision|warn|\n"
      "                      error (default info); filtering never reorders\n"
      "                      surviving events\n"
      "  --report-out FILE   (study/tables) write a Markdown run report with a\n"
      "                      per-app verdict-attribution table (a .json twin is\n"
      "                      written next to it)\n"
      "  --summary=on|off    end-of-run cache/phase/counter summary table\n"
      "                      (default on)\n"
      "  --cache-dir DIR     persist the content-keyed static-scan and chain-\n"
      "                      validation caches in DIR and reload them next\n"
      "                      run (warm start). Missing or corrupt cache files\n"
      "                      mean a cold start, never an error; results are\n"
      "                      byte-identical warm or cold (DESIGN.md §15)\n"
      "  --snapshot N        (study/longitudinal) advance the generated store\n"
      "                      through N deterministic churn epochs — leaf\n"
      "                      renewals, app updates, pin rotations — before\n"
      "                      analyzing (default 0 = as generated; longitudinal\n"
      "                      defaults to 6 epochs)\n"
      "  --incremental=on|off with --snapshot N: analyze only the apps the\n"
      "                      final churn epoch changed and merge over the\n"
      "                      previous snapshot's results; merged exports are\n"
      "                      byte-identical to a full re-analysis (default\n"
      "                      off)\n"
      "  --perf-report-out FILE  (study/autopsy) write the run autopsy as\n"
      "                      Markdown, with a .json twin next to it; attaches\n"
      "                      the interval timeline to the run (exports stay\n"
      "                      byte-identical — DESIGN.md §17)\n"
      "  --folded-out FILE   (study/autopsy) write collapsed stacks\n"
      "                      ('platform;app;stage weight_us' lines) for\n"
      "                      flamegraph.pl or speedscope\n"
      "  --timeline-cap N    per-worker interval-reservoir capacity (default\n"
      "                      8192); timeline memory is O(workers x N) at any\n"
      "                      corpus size\n");
  return 2;
}

store::Ecosystem Generate(const CliOptions& opts) {
  store::EcosystemConfig config;
  config.seed = opts.seed;
  config.scale = opts.scale;
  std::fprintf(stderr, "[pinscope] generating ecosystem (scale %.2f, seed %llu)\n",
               config.scale, static_cast<unsigned long long>(config.seed));
  return store::Ecosystem::Generate(config);
}

int CmdGenerate(const CliOptions& opts) {
  const store::Ecosystem eco = Generate(opts);
  report::TextTable table;
  table.SetHeader({"Dataset", "Android", "iOS"});
  for (const store::DatasetId id : store::AllDatasets()) {
    table.AddRow({std::string(store::DatasetName(id)),
                  std::to_string(eco.dataset(id, appmodel::Platform::kAndroid).size()),
                  std::to_string(eco.dataset(id, appmodel::Platform::kIos).size())});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nservers: %zu   CT-logged certificates: %zu   common pairs: %zu\n",
              eco.world().size(), eco.ct_log().size(), eco.common_pairs().size());
  return 0;
}

void ExportJson(const core::Study& study, const std::string& path) {
  const std::string lines = core::ExportStudyJson(study);
  std::size_t records = 0;
  for (const char c : lines) {
    if (c == '\n') ++records;
  }
  std::ofstream out(path);
  out << lines;
  std::printf("wrote %zu JSON records to %s\n", records, path.c_str());
}

void ExportCsv(const core::Study& study, const std::string& path) {
  const std::string csv = core::ExportStudyCsv(study);
  std::size_t rows = 0;
  for (const char c : csv) {
    if (c == '\n') ++rows;
  }
  if (rows > 0) --rows;  // the header row
  std::ofstream out(path);
  out << csv;
  std::printf("wrote %zu CSV rows to %s\n", rows, path.c_str());
}

/// `study --incremental on --snapshot N`: full streaming baseline at
/// snapshot N-1, one more churn epoch, then re-analysis of only the apps
/// that epoch changed, merged over the baseline rows. The merged exports are
/// byte-identical to a full re-analysis of the same snapshot
/// (tests/core/stream_equivalence_test.cc proves it).
int CmdStudyIncremental(const CliOptions& opts) {
  store::Ecosystem eco = Generate(opts);
  ApplySnapshots(eco, opts.snapshots - 1);

  obs::Observer observer;
  std::optional<obs::EventLog> log;
  if (!opts.log_path.empty() || !opts.report_path.empty()) {
    log.emplace(opts.log_level);
    observer.set_log(&*log);
  }
  core::StudyOptions sopts = StudyOptionsFor(opts, &observer);
  const std::unique_ptr<obs::Telemetry> telemetry =
      StartTelemetry(opts, observer);
  sopts.telemetry = telemetry.get();
  const core::EcosystemCorpusSource source(eco);

  std::fprintf(stderr, "[pinscope] streaming baseline at snapshot %d\n",
               eco.snapshot());
  core::StreamExporter baseline;
  const core::StreamStudyResult base_run =
      core::RunStreamingStudy(source, sopts, baseline);

  const store::SnapshotChurn churn = eco.AdvanceSnapshot();
  PrintChurn(churn);

  const std::set<std::pair<appmodel::Platform, std::size_t>> changed(
      churn.changed_apps.begin(), churn.changed_apps.end());
  sopts.app_filter = [&changed](appmodel::Platform p, std::size_t idx) {
    return changed.contains({p, idx});
  };
  std::fprintf(stderr,
               "[pinscope] incremental re-analysis of %zu changed apps at "
               "snapshot %d\n",
               changed.size(), eco.snapshot());
  core::StreamExporter merged;
  const core::StreamStudyResult delta_run =
      core::RunStreamingStudy(source, sopts, merged);
  merged.MergeBase(baseline);

  const std::vector<report::AppVerdict> verdicts = merged.FinishVerdicts();
  std::printf("incremental study: baseline %zu apps, re-analyzed %zu changed "
              "apps, merged %zu results at snapshot %d\n",
              base_run.apps, delta_run.apps, verdicts.size(), eco.snapshot());

  if (telemetry != nullptr) telemetry->Stop();
  EmitObservability(observer, opts);
  EmitRunReportVerdicts(verdicts, observer, opts);
  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    out << merged.FinishJson();
    std::printf("wrote merged JSON records to %s\n", opts.json_path.c_str());
  }
  if (!opts.csv_path.empty()) {
    std::ofstream out(opts.csv_path);
    out << merged.FinishCsv();
    std::printf("wrote merged CSV rows to %s\n", opts.csv_path.c_str());
  }
  return 0;
}

int CmdStudy(const CliOptions& opts) {
  if (opts.incremental && opts.snapshots > 0) return CmdStudyIncremental(opts);
  store::Ecosystem eco = Generate(opts);
  ApplySnapshots(eco, opts.snapshots);
  obs::Observer observer;
  std::optional<obs::EventLog> log;
  if (!opts.log_path.empty() || !opts.report_path.empty()) {
    log.emplace(opts.log_level);
    observer.set_log(&*log);
  }
  core::StudyOptions sopts = StudyOptionsFor(opts, &observer);
  const std::unique_ptr<obs::Telemetry> telemetry =
      StartTelemetry(opts, observer);
  sopts.telemetry = telemetry.get();
  const std::unique_ptr<obs::Timeline> timeline = StartTimeline(opts);
  sopts.timeline = timeline.get();
  core::Study study(eco, sopts);
  std::fprintf(stderr, "[pinscope] running measurement pipeline\n");
  study.Run();
  if (telemetry != nullptr) telemetry->Stop();

  report::TextTable table;
  table.SetHeader({"Dataset", "Platform", "Apps", "Dynamic pinning",
                   "Static potential", "NSC pinning"});
  for (const store::DatasetId id : store::AllDatasets()) {
    for (const appmodel::Platform p :
         {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
      const core::PrevalenceRow row = core::ComputePrevalence(study, id, p);
      table.AddRow(
          {std::string(store::DatasetName(id)), std::string(PlatformName(p)),
           std::to_string(row.total),
           std::to_string(row.dynamic_pinning) + " (" +
               util::Percent(static_cast<double>(row.dynamic_pinning) /
                                 std::max(row.total, 1),
                             1) +
               ")",
           std::to_string(row.embedded_static),
           p == appmodel::Platform::kAndroid ? std::to_string(row.config_pinning)
                                             : std::string("-")});
    }
  }
  std::printf("%s", table.Render().c_str());

  // Cache hit-rates, phase timings, and pipeline counters all come from the
  // unified registry now (the caches publish gauges when Run() finishes).
  EmitObservability(observer, opts);
  EmitRunReport(study, observer, opts);
  EmitPerfArtifacts(timeline.get(), eco, observer, opts, /*print=*/false);

  if (!opts.json_path.empty()) ExportJson(study, opts.json_path);
  if (!opts.csv_path.empty()) ExportCsv(study, opts.csv_path);
  return 0;
}

/// `pinscope autopsy`: run the study with the interval timeline attached and
/// print the causal profile — critical path, per-worker idle attribution,
/// slowest apps, contended locks — instead of the paper tables. The same
/// artifact flags as `study` (--perf-report-out, --folded-out) also work.
int CmdAutopsy(const CliOptions& opts) {
  store::Ecosystem eco = Generate(opts);
  ApplySnapshots(eco, opts.snapshots);
  obs::Observer observer;
  core::StudyOptions sopts = StudyOptionsFor(opts, &observer);
  const std::unique_ptr<obs::Telemetry> telemetry =
      StartTelemetry(opts, observer);
  sopts.telemetry = telemetry.get();
  const std::unique_ptr<obs::Timeline> timeline = StartTimeline(opts);
  sopts.timeline = timeline.get();
  core::Study study(eco, sopts);
  std::fprintf(stderr, "[pinscope] running measurement pipeline (autopsy)\n");
  study.Run();
  if (telemetry != nullptr) telemetry->Stop();
  EmitPerfArtifacts(timeline.get(), eco, observer, opts, /*print=*/true);
  return 0;
}

int CmdAudit(const CliOptions& opts) {
  if (opts.positional.empty()) {
    std::fprintf(stderr, "audit requires an APP_ID\n");
    return 2;
  }
  const std::string& app_id = opts.positional.front();
  const store::Ecosystem eco = Generate(opts);

  const appmodel::App* target = nullptr;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const appmodel::App& app : eco.apps(p)) {
      if (app.meta.app_id == app_id) target = &app;
    }
  }
  if (target == nullptr) {
    std::fprintf(stderr, "unknown app id '%s' (try `pinscope generate` to list "
                         "dataset sizes, or a different seed/scale)\n",
                 app_id.c_str());
    return 1;
  }

  staticanalysis::StaticAnalysisOptions sopts;
  sopts.ct_log = &eco.ct_log();
  const auto sreport = staticanalysis::AnalyzeStatically(*target, sopts);
  std::printf("%s (%s, %s)\n", target->meta.display_name.c_str(),
              target->meta.app_id.c_str(), PlatformName(target->meta.platform).data());
  std::printf("  static: %zu certs, %zu pins (%zu CT-resolved), NSC pins: %s\n",
              sreport.scan.certificates.size(), sreport.pins_total,
              sreport.pins_resolved, sreport.ConfigPinning() ? "yes" : "no");

  const auto dreport = dynamicanalysis::RunDynamicAnalysis(*target, eco.world());
  std::printf("  dynamic: %s\n", dreport.AppPins() ? "PINS at run time"
                                                   : "no pinning observed");
  for (const auto& dest : dreport.destinations) {
    std::printf("    %-34s %s%s\n", dest.hostname.c_str(),
                dest.pinned ? "PINNED" : "not pinned",
                dest.pinned ? (dest.circumvented ? " (circumventable)"
                                                 : " (opaque: custom stack)")
                            : "");
  }
  return 0;
}

int CmdTables(const CliOptions& opts) {
  const store::Ecosystem eco = Generate(opts);
  obs::Observer observer;
  std::optional<obs::EventLog> log;
  if (!opts.log_path.empty() || !opts.report_path.empty()) {
    log.emplace(opts.log_level);
    observer.set_log(&*log);
  }
  core::StudyOptions sopts = StudyOptionsFor(opts, &observer);
  const std::unique_ptr<obs::Telemetry> telemetry =
      StartTelemetry(opts, observer);
  sopts.telemetry = telemetry.get();
  core::Study study(eco, sopts);
  study.Run();
  if (telemetry != nullptr) telemetry->Stop();

  std::printf("%s", report::SectionHeader("Prevalence (Table 3)").c_str());
  for (const store::DatasetId id : store::AllDatasets()) {
    for (const appmodel::Platform p :
         {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
      const auto row = core::ComputePrevalence(study, id, p);
      std::printf("  %-7s %-7s dyn %3d  static %3d  nsc %3d  (n=%d)\n",
                  store::DatasetName(id).data(), PlatformName(p).data(),
                  row.dynamic_pinning, row.embedded_static, row.config_pinning,
                  row.total);
    }
  }

  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    std::printf("%s", report::SectionHeader(
                          std::string("Pinning categories (Tables 4/5) — ") +
                          std::string(PlatformName(p))).c_str());
    for (const auto& row : core::ComputePinningByCategory(study, p, 5, 3)) {
      std::printf("  %-20s %5.1f%%  (%d apps)\n", row.category.c_str(),
                  row.pinning_pct, row.pinning_apps);
    }
    const auto pki = core::ComputePkiCounts(study, p);
    std::printf("%s", report::SectionHeader(
                          std::string("PKI (Table 6) — ") +
                          std::string(PlatformName(p))).c_str());
    std::printf("  default %d / custom %d / unavailable %d (self-signed %d)\n",
                pki.default_pki, pki.custom_pki, pki.unavailable, pki.self_signed);
  }
  EmitObservability(observer, opts);
  EmitRunReport(study, observer, opts);
  return 0;
}

/// Prints the longitudinal churn table (Markdown, ready for EXPERIMENTS.md):
/// one row per snapshot epoch of leaf renewals, key reuse, app updates, pin
/// rotations, and the resulting stale-pin census.
int CmdLongitudinal(const CliOptions& opts) {
  store::Ecosystem eco = Generate(opts);
  const int epochs = opts.snapshots > 0 ? opts.snapshots : 6;
  std::printf("Longitudinal store churn — scale %.2f, seed %llu, %d "
              "snapshots\n\n",
              opts.scale, static_cast<unsigned long long>(opts.seed), epochs);
  std::printf("| Snapshot | Hosts renewed | Keys reused | Apps updated | "
              "Pins rotated | Stale pins | Changed apps |\n");
  std::printf("|---:|---:|---:|---:|---:|---:|---:|\n");
  for (int s = 0; s < epochs; ++s) {
    const store::SnapshotChurn c = eco.AdvanceSnapshot();
    std::printf("| %d | %zu | %zu | %zu | %zu | %zu | %zu |\n", c.snapshot,
                c.hosts_renewed, c.keys_reused, c.apps_updated, c.pins_rotated,
                c.stale_pins, c.changed_apps.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = cli::ParseArgs(argc, argv);
  if (!opts.has_value() || opts->command == "help") return Usage();
  try {
    if (opts->command == "generate") return CmdGenerate(*opts);
    if (opts->command == "study") return CmdStudy(*opts);
    if (opts->command == "audit") return CmdAudit(*opts);
    if (opts->command == "tables") return CmdTables(*opts);
    if (opts->command == "autopsy") return CmdAutopsy(*opts);
    if (opts->command == "longitudinal") return CmdLongitudinal(*opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", opts->command.c_str());
  return Usage();
}

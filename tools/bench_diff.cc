// bench_diff — the standalone perf-regression gate over BENCH_*.json files.
//
// Usage: bench_diff [--check] [--max-regress-pct N] BASELINE CURRENT
//
// Compares two bench documents with report::CompareBenchJson and prints one
// line per finding. Exit status: 0 when no classified metric regressed past
// the threshold (default 10%), 1 on regression or parse failure, 2 on
// usage/IO errors. `--check` is accepted for explicitness in CI recipes;
// gating is the default behavior either way.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "report/bench_compare.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--check] [--max-regress-pct N] "
               "BASELINE.json CURRENT.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pinscope::report::BenchCompareOptions options;
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") continue;  // gating is the default; kept for CI.
    if (arg == "--max-regress-pct") {
      if (i + 1 >= argc) return Usage();
      options.max_regress_pct = std::atof(argv[++i]);
      continue;
    }
    if (arg.rfind("--max-regress-pct=", 0) == 0) {
      options.max_regress_pct =
          std::atof(arg.c_str() + sizeof("--max-regress-pct=") - 1);
      continue;
    }
    if (arg.rfind("--", 0) == 0) return Usage();
    if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      return Usage();
    }
  }
  if (baseline_path == nullptr || current_path == nullptr ||
      options.max_regress_pct <= 0) {
    return Usage();
  }

  std::string baseline, current;
  if (!ReadFile(baseline_path, &baseline)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", baseline_path);
    return 2;
  }
  if (!ReadFile(current_path, &current)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", current_path);
    return 2;
  }

  const pinscope::report::BenchCompareResult result =
      pinscope::report::CompareBenchJson(baseline, current, options);
  std::fputs(pinscope::report::RenderBenchCompare(result).c_str(), stdout);
  return result.ok() ? 0 : 1;
}

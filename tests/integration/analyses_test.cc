// Unit-level checks of the per-table analysis functions, on a small study.
#include "core/analyses.h"

#include <gtest/gtest.h>

namespace pinscope::core {
namespace {

using appmodel::Platform;
using store::DatasetId;

struct SmallStudy {
  SmallStudy() : eco([] {
    store::EcosystemConfig config;
    config.seed = 17;
    config.scale = 0.05;
    return store::Ecosystem::Generate(config);
  }()), study(eco) {
    study.Run();
  }
  store::Ecosystem eco;
  Study study;
};

const SmallStudy& S() {
  static const SmallStudy s;
  return s;
}

TEST(AnalysesTest, PrevalenceTotalsMatchDatasetSizes) {
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    for (DatasetId id : store::AllDatasets()) {
      const PrevalenceRow row = ComputePrevalence(S().study, id, p);
      EXPECT_EQ(static_cast<std::size_t>(row.total),
                S().eco.dataset(id, p).size());
      EXPECT_LE(row.dynamic_pinning, row.total);
      EXPECT_LE(row.config_pinning, row.dynamic_pinning);
    }
  }
}

TEST(AnalysesTest, CategoryRowsAreOrderedAndBounded) {
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    const auto rows = ComputePinningByCategory(S().study, p, 10, 1);
    EXPECT_LE(rows.size(), 10u);
    for (std::size_t i = 1; i < rows.size(); ++i) {
      EXPECT_GE(rows[i - 1].pinning_pct, rows[i].pinning_pct);
    }
    for (const auto& row : rows) {
      EXPECT_GT(row.pinning_apps, 0);
      EXPECT_GT(row.popularity_rank, 0);
      EXPECT_LE(row.pinning_pct, 100.0);
    }
  }
}

TEST(AnalysesTest, PairAnalysisCoversEveryCommonPair) {
  const auto pairs = AnalyzeCommonPairs(S().study);
  EXPECT_EQ(pairs.size(), S().eco.common_pairs().size());
  for (const PairAnalysis& pa : pairs) {
    // Heatmap fractions are well-formed.
    EXPECT_GE(pa.jaccard, 0.0);
    EXPECT_LE(pa.jaccard, 1.0);
    EXPECT_GE(pa.android_pinned_unpinned_on_ios, 0.0);
    EXPECT_LE(pa.android_pinned_unpinned_on_ios, 1.0);
    // Verdicts only exist when someone pins.
    if (pa.mode == PairAnalysis::Mode::kNone) {
      EXPECT_EQ(pa.verdict, PairAnalysis::Verdict::kNone);
      EXPECT_TRUE(pa.pinned_android.empty());
      EXPECT_TRUE(pa.pinned_ios.empty());
    } else {
      EXPECT_NE(pa.verdict, PairAnalysis::Verdict::kNone);
    }
    // Identical sets imply a consistent verdict.
    if (pa.identical_sets) {
      EXPECT_EQ(pa.verdict, PairAnalysis::Verdict::kConsistent);
      EXPECT_DOUBLE_EQ(pa.jaccard, 1.0);
    }
  }
}

TEST(AnalysesTest, DomainProfilesOnlyCoverPinningApps) {
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    for (const AppDomainProfile& prof : ComputeDomainProfiles(S().study, p)) {
      EXPECT_GT(prof.first_party_pinned + prof.third_party_pinned, 0)
          << prof.app_id;
      EXPECT_GE(prof.Total(), 1);
    }
  }
}

TEST(AnalysesTest, PkiBucketsArePartition) {
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    const PkiCounts counts = ComputePkiCounts(S().study, p);
    // Unique pinned hostnames == sum of the three buckets.
    std::set<std::string> hosts;
    for (const AppResult* r : S().study.AllResults(p)) {
      for (const auto& host : r->dynamic_report.PinnedDestinations()) {
        hosts.insert(host);
      }
    }
    EXPECT_EQ(static_cast<int>(hosts.size()),
              counts.default_pki + counts.custom_pki + counts.unavailable);
    EXPECT_LE(counts.self_signed, counts.custom_pki);
    EXPECT_EQ(counts.self_signed_validity_days.size(),
              static_cast<std::size_t>(counts.self_signed));
  }
}

TEST(AnalysesTest, CertMatchInvariants) {
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    const CertMatchStats stats = ComputeCertMatches(S().study, p);
    EXPECT_LE(stats.apps_with_match, stats.pinning_apps);
    EXPECT_LE(stats.leaf_spki_pinned + stats.leaf_raw_embedded,
              2 * stats.leaf_certs);  // a leaf may have both evidence kinds
    EXPECT_LE(stats.rotated_still_pinned, stats.leaf_raw_embedded);
  }
}

TEST(AnalysesTest, CipherPercentagesBounded) {
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    for (DatasetId id : store::AllDatasets()) {
      const CipherRow row = ComputeCiphers(S().study, id, p);
      EXPECT_GE(row.overall_pct, 0.0);
      EXPECT_LE(row.overall_pct, 100.0);
      EXPECT_GE(row.pinning_apps_pct, 0.0);
      EXPECT_LE(row.pinning_apps_pct, 100.0);
    }
  }
}

TEST(AnalysesTest, PiiRowsOnlyForObservedTypes) {
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    const PiiAnalysis pii = ComputePii(S().study, p);
    for (const PiiRow& row : pii.rows) {
      EXPECT_GT(row.pinned_pct + row.non_pinned_pct, 0.0);
      EXPECT_LE(row.pinned_pct, 100.0);
      EXPECT_LE(row.non_pinned_pct, 100.0);
    }
    EXPECT_GE(pii.non_pinned_dests, pii.pinned_dests);
  }
}

TEST(AnalysesTest, CircumventionBounded) {
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    const CircumventionStats stats = ComputeCircumvention(S().study, p);
    EXPECT_LE(stats.circumvented_unique, stats.pinned_unique);
    EXPECT_GE(stats.Rate(), 0.0);
    EXPECT_LE(stats.Rate(), 1.0);
  }
}

TEST(AnalysesTest, FrameworksNeedMinimumAppCount) {
  const auto frameworks = ComputeFrameworks(S().study, Platform::kAndroid, 2);
  for (const auto& fw : frameworks) {
    EXPECT_GT(fw.app_count, 2u);
    EXPECT_FALSE(fw.framework.empty());
  }
}

}  // namespace
}  // namespace pinscope::core

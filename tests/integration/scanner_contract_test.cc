// Contract property between the generator and the static scanner: pin
// material the generator claims to ship must actually be discoverable by the
// analyzer, on every app of a generated corpus.
#include <gtest/gtest.h>

#include "staticanalysis/static_report.h"
#include "store/generator.h"

namespace pinscope {
namespace {

const store::Ecosystem& Eco() {
  static const store::Ecosystem eco = [] {
    store::EcosystemConfig config;
    config.seed = 23;
    config.scale = 0.05;
    return store::Ecosystem::Generate(config);
  }();
  return eco;
}

TEST(ScannerContractTest, FirstPartyPinsAreStaticallyDiscoverable) {
  staticanalysis::StaticAnalysisOptions opts;
  opts.ct_log = &Eco().ct_log();
  int checked = 0;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const appmodel::App& app : Eco().apps(p)) {
      bool has_first_party_pin = false;
      for (const auto& dest : app.behavior.destinations) {
        if (dest.pinned && dest.owning_sdk.empty() && !dest.requires_interaction) {
          has_first_party_pin = true;
        }
      }
      if (!has_first_party_pin) continue;
      ++checked;
      const auto report = staticanalysis::AnalyzeStatically(app, opts);
      EXPECT_TRUE(report.PotentialPinning() || report.ConfigPinning())
          << app.meta.app_id;
    }
  }
  EXPECT_GT(checked, 5);
}

TEST(ScannerContractTest, PinningSdkPlacementLeavesEvidencePaths) {
  // Apps carrying a cert-embedding SDK must yield attribution-grade paths.
  staticanalysis::StaticAnalysisOptions opts;
  int checked = 0;
  for (const appmodel::App& app : Eco().apps(appmodel::Platform::kAndroid)) {
    bool has_embedding_sdk = false;
    for (const auto& dest : app.behavior.destinations) {
      if (!dest.owning_sdk.empty() && dest.pinned) has_embedding_sdk = true;
    }
    if (!has_embedding_sdk) continue;
    ++checked;
    const auto report = staticanalysis::AnalyzeStatically(app, opts);
    bool smali_evidence = false;
    for (const std::string& path : report.EvidencePaths()) {
      if (path.rfind("smali/", 0) == 0) smali_evidence = true;
    }
    EXPECT_TRUE(smali_evidence) << app.meta.app_id;
  }
  EXPECT_GT(checked, 0);
}

TEST(ScannerContractTest, EmbeddedCertFilesParseBackToServedCertificates) {
  // Every cert file the generator drops must decode, and its subject must
  // correspond to a provisioned server or catalog CA.
  staticanalysis::StaticAnalysisOptions opts;
  int certs_seen = 0;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const appmodel::App& app : Eco().apps(p)) {
      const auto report = staticanalysis::AnalyzeStatically(app, opts);
      for (const auto& found : report.scan.certificates) {
        ++certs_seen;
        EXPECT_FALSE(found.cert.subject().common_name().empty()) << found.path;
      }
    }
  }
  EXPECT_GT(certs_seen, 10);
}

}  // namespace
}  // namespace pinscope

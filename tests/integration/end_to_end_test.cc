// Integration: single-app end-to-end walks of the whole toolchain — package
// bytes in, measurement verdicts out — plus cross-layer invariants the
// module-level tests cannot see.
#include <gtest/gtest.h>

#include "core/analyses.h"
#include "core/study.h"
#include "dynamicanalysis/pipeline.h"
#include "staticanalysis/static_report.h"
#include "store/crawler.h"
#include "store/generator.h"

namespace pinscope {
namespace {

using appmodel::Platform;

const store::Ecosystem& Eco() {
  static const store::Ecosystem eco = [] {
    store::EcosystemConfig config;
    config.seed = 13;
    config.scale = 0.04;
    return store::Ecosystem::Generate(config);
  }();
  return eco;
}

TEST(EndToEndTest, CrawlThenAnalyzeOneAndroidApp) {
  store::GPlayCli cli(Eco());
  // Pick a runtime-pinning app from ground truth.
  const appmodel::App* pinning_app = nullptr;
  const auto& apps = Eco().apps(Platform::kAndroid);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (Eco().truth(Platform::kAndroid, i).runtime_pinning) {
      pinning_app = &apps[i];
      break;
    }
  }
  ASSERT_NE(pinning_app, nullptr);

  const auto downloaded = cli.Download(pinning_app->meta.app_id);
  ASSERT_TRUE(downloaded.has_value());

  staticanalysis::StaticAnalysisOptions static_opts;
  static_opts.ct_log = &Eco().ct_log();
  const auto static_report = staticanalysis::AnalyzeStatically(**downloaded, static_opts);
  // Some pinning apps carry their pins only in the NSC (the paper's
  // "Configuration Files" column); either static signal counts.
  EXPECT_TRUE(static_report.PotentialPinning() || static_report.ConfigPinning());

  const auto dynamic_report =
      dynamicanalysis::RunDynamicAnalysis(**downloaded, Eco().world());
  EXPECT_TRUE(dynamic_report.AppPins());
}

TEST(EndToEndTest, IosAppRequiresDecryptionForBinaryEvidence) {
  // An iOS pinning app whose pin material lives in the encrypted main binary
  // must yield no pin evidence without decryption and full evidence with it.
  const appmodel::App* target = nullptr;
  const auto& apps = Eco().apps(Platform::kIos);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (!Eco().truth(Platform::kIos, i).runtime_pinning) continue;
    // Needs first-party pinning (pin string in the main binary).
    for (const auto& dest : apps[i].behavior.destinations) {
      if (dest.pinned && dest.owning_sdk.empty()) {
        target = &apps[i];
        break;
      }
    }
    if (target != nullptr) break;
  }
  ASSERT_NE(target, nullptr);

  staticanalysis::StaticAnalysisOptions no_jailbreak;
  no_jailbreak.device.jailbroken = false;
  const auto locked = staticanalysis::AnalyzeStatically(*target, no_jailbreak);
  EXPECT_FALSE(locked.decryption_ok);

  const auto unlocked = staticanalysis::AnalyzeStatically(*target);
  EXPECT_TRUE(unlocked.decryption_ok);
  EXPECT_TRUE(unlocked.PotentialPinning());
}

TEST(EndToEndTest, CtResolutionEnrichesStaticPins) {
  // Default-PKI pins found in packages should resolve to certificates via
  // the CT log for a substantial fraction of apps.
  staticanalysis::StaticAnalysisOptions opts;
  opts.ct_log = &Eco().ct_log();
  int apps_with_pins = 0, apps_with_resolution = 0;
  for (const auto& app : Eco().apps(Platform::kAndroid)) {
    const auto report = staticanalysis::AnalyzeStatically(app, opts);
    if (report.pins_total == 0) continue;
    ++apps_with_pins;
    if (report.pins_resolved > 0) ++apps_with_resolution;
  }
  ASSERT_GT(apps_with_pins, 0);
  EXPECT_GT(apps_with_resolution, 0);
}

TEST(EndToEndTest, CertMatchStatsFavorCaPins) {
  core::Study study(Eco());
  study.Run();
  int ca = 0, leaf = 0;
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    const auto stats = core::ComputeCertMatches(study, p);
    ca += stats.ca_certs;
    leaf += stats.leaf_certs;
    EXPECT_LE(stats.apps_with_match, stats.pinning_apps);
  }
  // §5.3.2: most matched pinned certificates are CAs.
  EXPECT_GT(ca, leaf);
}

TEST(EndToEndTest, WeakCipherGapMatchesTable8Shape) {
  core::Study study(Eco());
  study.Run();
  // iOS: overall weak-cipher prevalence is much higher than Android's.
  const auto ios = core::ComputeCiphers(study, store::DatasetId::kPopular,
                                        Platform::kIos);
  const auto android = core::ComputeCiphers(study, store::DatasetId::kPopular,
                                            Platform::kAndroid);
  EXPECT_GT(ios.overall_pct, 60.0);
  EXPECT_LT(android.overall_pct, 45.0);
}

TEST(EndToEndTest, PiiAnalysisFindsAdIdOnBothSides) {
  core::Study study(Eco());
  study.Run();
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    const auto pii = core::ComputePii(study, p);
    ASSERT_GT(pii.non_pinned_dests, 0);
    bool has_ad_id = false;
    for (const auto& row : pii.rows) {
      if (row.type == appmodel::PiiType::kAdvertisingId) {
        has_ad_id = true;
        EXPECT_GT(row.non_pinned_pct, 5.0);
      }
    }
    EXPECT_TRUE(has_ad_id) << PlatformName(p);
  }
}

}  // namespace
}  // namespace pinscope

// Integration: the full Study pipeline over a scaled-down generated
// ecosystem, validated against generation ground truth. This is the
// measured-vs-generated contract every bench relies on.
#include "core/study.h"

#include <gtest/gtest.h>

#include "core/analyses.h"

namespace pinscope::core {
namespace {

using appmodel::Platform;
using store::DatasetId;

struct StudyFixture {
  StudyFixture() : eco([] {
    store::EcosystemConfig config;
    config.seed = 5;
    config.scale = 0.06;
    return store::Ecosystem::Generate(config);
  }()), study(eco) {
    study.Run();
  }
  store::Ecosystem eco;
  Study study;
};

const StudyFixture& Fixture() {
  static const StudyFixture fixture;
  return fixture;
}

TEST(StudyTest, DynamicDetectionMatchesGroundTruthExactly) {
  const auto& f = Fixture();
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    for (const DatasetId id :
         {DatasetId::kCommon, DatasetId::kPopular, DatasetId::kRandom}) {
      for (std::size_t idx : f.eco.dataset(id, p).app_indices) {
        const AppResult& r = f.study.result(p, idx);
        EXPECT_EQ(r.dynamic_report.AppPins(), f.eco.truth(p, idx).runtime_pinning)
            << PlatformName(p) << " " << r.app->meta.app_id;
      }
    }
  }
}

TEST(StudyTest, StaticDetectionCoversRuntimeAndStaticOnlyApps) {
  const auto& f = Fixture();
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    const auto& apps = f.eco.apps(p);
    for (const AppResult* r : f.study.AllResults(p)) {
      const store::AppTruth& truth = f.eco.truth(p, r->universe_index);
      if (truth.runtime_pinning || truth.static_only) {
        // NSC-only pinners surface through the config-file signal instead of
        // the embedded-certificate one.
        EXPECT_TRUE(r->static_report.PotentialPinning() ||
                    r->static_report.ConfigPinning())
            << apps[r->universe_index].meta.app_id;
      }
    }
  }
}

TEST(StudyTest, NscDetectionMatchesTruth) {
  const auto& f = Fixture();
  for (const AppResult* r : f.study.AllResults(Platform::kAndroid)) {
    const store::AppTruth& truth = f.eco.truth(Platform::kAndroid, r->universe_index);
    EXPECT_EQ(r->static_report.ConfigPinning(), truth.nsc_pins)
        << r->app->meta.app_id;
  }
}

TEST(StudyTest, PrevalenceShapeMatchesTable3) {
  const auto& f = Fixture();
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    for (const DatasetId id :
         {DatasetId::kCommon, DatasetId::kPopular, DatasetId::kRandom}) {
      const PrevalenceRow row = ComputePrevalence(f.study, id, p);
      // Static embedded ≥ dynamic ≥ config (the Table 3 ordering).
      EXPECT_GE(row.embedded_static, row.dynamic_pinning)
          << DatasetName(id) << " " << PlatformName(p);
      EXPECT_GE(row.dynamic_pinning, row.config_pinning);
      EXPECT_GT(row.total, 0);
    }
    // Popular pins more than random.
    EXPECT_GT(ComputePrevalence(f.study, DatasetId::kPopular, p).dynamic_pinning,
              ComputePrevalence(f.study, DatasetId::kRandom, p).dynamic_pinning);
  }
  // iOS pins more than Android in the popular set.
  EXPECT_GT(
      ComputePrevalence(f.study, DatasetId::kPopular, Platform::kIos).dynamic_pinning,
      ComputePrevalence(f.study, DatasetId::kPopular, Platform::kAndroid)
          .dynamic_pinning);
}

TEST(StudyTest, ConsistencyVerdictsMatchGeneratedClasses) {
  const auto& f = Fixture();
  const auto pairs = AnalyzeCommonPairs(f.study);
  ASSERT_EQ(pairs.size(), f.eco.common_pairs().size());
  int checked = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const store::ConsistencyClass cls = f.eco.common_pairs()[i].cls;
    const PairAnalysis& pa = pairs[i];
    switch (cls) {
      case store::ConsistencyClass::kNotPinning:
        EXPECT_EQ(pa.mode, PairAnalysis::Mode::kNone);
        break;
      case store::ConsistencyClass::kConsistentIdentical:
        EXPECT_EQ(pa.verdict, PairAnalysis::Verdict::kConsistent);
        EXPECT_TRUE(pa.identical_sets);
        EXPECT_DOUBLE_EQ(pa.jaccard, 1.0);
        ++checked;
        break;
      case store::ConsistencyClass::kConsistentPartial:
        EXPECT_EQ(pa.verdict, PairAnalysis::Verdict::kConsistent);
        EXPECT_FALSE(pa.identical_sets);
        ++checked;
        break;
      case store::ConsistencyClass::kInconsistentBoth:
        EXPECT_EQ(pa.mode, PairAnalysis::Mode::kBoth);
        EXPECT_EQ(pa.verdict, PairAnalysis::Verdict::kInconsistent);
        ++checked;
        break;
      case store::ConsistencyClass::kInconclusiveBoth:
        EXPECT_EQ(pa.mode, PairAnalysis::Mode::kBoth);
        EXPECT_EQ(pa.verdict, PairAnalysis::Verdict::kInconclusive);
        ++checked;
        break;
      case store::ConsistencyClass::kAndroidOnlyInconsistent:
        EXPECT_EQ(pa.mode, PairAnalysis::Mode::kAndroidOnly);
        EXPECT_EQ(pa.verdict, PairAnalysis::Verdict::kInconsistent);
        EXPECT_GT(pa.android_pinned_unpinned_on_ios, 0.0);
        ++checked;
        break;
      case store::ConsistencyClass::kAndroidOnlyInconclusive:
        EXPECT_EQ(pa.mode, PairAnalysis::Mode::kAndroidOnly);
        EXPECT_EQ(pa.verdict, PairAnalysis::Verdict::kInconclusive);
        ++checked;
        break;
      case store::ConsistencyClass::kIosOnlyInconsistent:
        EXPECT_EQ(pa.mode, PairAnalysis::Mode::kIosOnly);
        EXPECT_EQ(pa.verdict, PairAnalysis::Verdict::kInconsistent);
        ++checked;
        break;
      case store::ConsistencyClass::kIosOnlyInconclusive:
        EXPECT_EQ(pa.mode, PairAnalysis::Mode::kIosOnly);
        EXPECT_EQ(pa.verdict, PairAnalysis::Verdict::kInconclusive);
        ++checked;
        break;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(StudyTest, PkiCountsAreDefaultDominated) {
  const auto& f = Fixture();
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    const PkiCounts counts = ComputePkiCounts(f.study, p);
    EXPECT_GT(counts.default_pki, counts.custom_pki) << PlatformName(p);
    EXPECT_GT(counts.default_pki, 0);
  }
}

TEST(StudyTest, CircumventionRatesLandNearPaper) {
  const auto& f = Fixture();
  const auto android = ComputeCircumvention(f.study, Platform::kAndroid);
  const auto ios = ComputeCircumvention(f.study, Platform::kIos);
  ASSERT_GT(android.pinned_unique, 0);
  ASSERT_GT(ios.pinned_unique, 0);
  // §4.3: ≈51.5% (Android), ≈66.2% (iOS); generous tolerance at small scale.
  EXPECT_NEAR(android.Rate(), 0.515, 0.30);
  EXPECT_NEAR(ios.Rate(), 0.66, 0.30);
}

TEST(StudyTest, FrameworkAttributionFindsCatalogSdks) {
  const auto& f = Fixture();
  // At 6% scale only the heaviest SDKs cross the >5-apps bar; lower it.
  const auto frameworks = ComputeFrameworks(f.study, Platform::kIos, 1);
  bool found_catalog_sdk = false;
  for (const auto& fw : frameworks) {
    if (fw.matched_catalog) found_catalog_sdk = true;
  }
  EXPECT_TRUE(found_catalog_sdk);
}

TEST(StudyTest, ResultThrowsForUnanalyzedIndex) {
  const auto& f = Fixture();
  EXPECT_THROW((void)f.study.result(Platform::kAndroid, 1'000'000), util::Error);
}

}  // namespace
}  // namespace pinscope::core

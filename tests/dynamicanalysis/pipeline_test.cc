#include "dynamicanalysis/pipeline.h"

#include <gtest/gtest.h>

#include "dynamicanalysis/device.h"
#include "testing/fixtures.h"

namespace pinscope::dynamicanalysis {
namespace {

using pinscope::testing::MakePinningApp;
using pinscope::testing::MakePlainApp;
using pinscope::testing::MakeWorld;

TEST(PipelineTest, DetectsPinningApp) {
  const auto world = MakeWorld();
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  const DynamicReport report = RunDynamicAnalysis(app, world);
  EXPECT_TRUE(report.AppPins());
  EXPECT_EQ(report.PinnedDestinations(),
            std::vector<std::string>{"api.fixture.com"});
  EXPECT_EQ(report.UnpinnedDestinations(),
            std::vector<std::string>{"tracker.ads.com"});
}

TEST(PipelineTest, PlainAppDoesNotPin) {
  const auto world = MakeWorld();
  const auto app = MakePlainApp(world, appmodel::Platform::kAndroid);
  const DynamicReport report = RunDynamicAnalysis(app, world);
  EXPECT_FALSE(report.AppPins());
  ASSERT_EQ(report.destinations.size(), 1u);
  EXPECT_TRUE(report.destinations[0].used_baseline);
}

TEST(PipelineTest, CircumventionDecryptsHookablePinnedTraffic) {
  const auto world = MakeWorld();
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  const DynamicReport report = RunDynamicAnalysis(app, world);
  for (const DestinationReport& dest : report.destinations) {
    if (dest.hostname == "api.fixture.com") {
      EXPECT_TRUE(dest.pinned);
      EXPECT_TRUE(dest.circumvented);
      // The pinned payload carried the advertising id.
      ASSERT_EQ(dest.pii.size(), 1u);
      EXPECT_EQ(dest.pii[0], appmodel::PiiType::kAdvertisingId);
    }
  }
}

TEST(PipelineTest, CustomStackPinnedTrafficStaysOpaque) {
  const auto world = MakeWorld();
  auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  app.behavior.destinations[0].stack = tls::TlsStack::kCustom;
  const DynamicReport report = RunDynamicAnalysis(app, world);
  for (const DestinationReport& dest : report.destinations) {
    if (dest.hostname == "api.fixture.com") {
      EXPECT_TRUE(dest.pinned);
      EXPECT_FALSE(dest.circumvented);
      EXPECT_TRUE(dest.pii.empty());
    }
  }
}

TEST(PipelineTest, UnpinnedPiiObservedViaMitm) {
  const auto world = MakeWorld();
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  const DynamicReport report = RunDynamicAnalysis(app, world);
  for (const DestinationReport& dest : report.destinations) {
    if (dest.hostname == "tracker.ads.com") {
      ASSERT_EQ(dest.pii.size(), 1u);
      EXPECT_EQ(dest.pii[0], appmodel::PiiType::kAdvertisingId);
    }
  }
}

TEST(PipelineTest, ServedChainsAreFetched) {
  const auto world = MakeWorld();
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  const DynamicReport report = RunDynamicAnalysis(app, world);
  for (const DestinationReport& dest : report.destinations) {
    EXPECT_FALSE(dest.served_chain.empty()) << dest.hostname;
  }
}

TEST(PipelineTest, ChainFetchUnavailableLeavesChainEmpty) {
  auto world = MakeWorld();
  world.MarkChainFetchUnavailable("api.fixture.com");
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  const DynamicReport report = RunDynamicAnalysis(app, world);
  for (const DestinationReport& dest : report.destinations) {
    if (dest.hostname == "api.fixture.com") {
      EXPECT_TRUE(dest.pinned);  // live connections are unaffected
      EXPECT_TRUE(dest.served_chain.empty());
    }
  }
}

TEST(PipelineTest, WeakCipherFlagSurfacesPerDestination) {
  const auto world = MakeWorld();
  auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  app.behavior.destinations[0].cipher_offer = tls::LegacyCipherOffer();
  const DynamicReport report = RunDynamicAnalysis(app, world);
  for (const DestinationReport& dest : report.destinations) {
    if (dest.hostname == "api.fixture.com") {
      EXPECT_TRUE(dest.weak_cipher);
    }
    if (dest.hostname == "tracker.ads.com") {
      EXPECT_FALSE(dest.weak_cipher);
    }
  }
}

TEST(PipelineTest, DeterministicForFixedSeed) {
  const auto world = MakeWorld();
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  DynamicOptions opts;
  opts.seed = 777;
  const DynamicReport a = RunDynamicAnalysis(app, world, opts);
  const DynamicReport b = RunDynamicAnalysis(app, world, opts);
  ASSERT_EQ(a.destinations.size(), b.destinations.size());
  for (std::size_t i = 0; i < a.destinations.size(); ++i) {
    EXPECT_EQ(a.destinations[i].pinned, b.destinations[i].pinned);
    EXPECT_EQ(a.destinations[i].circumvented, b.destinations[i].circumvented);
  }
}

TEST(PipelineTest, IosPinningDetectedDespiteBackgroundNoise) {
  auto world = MakeWorld();
  for (const std::string& host : AppleBackgroundDomains()) {
    world.EnsureDefaultPki(host, "apple");
  }
  const auto app = MakePinningApp(world, appmodel::Platform::kIos);
  const DynamicReport report = RunDynamicAnalysis(app, world);
  EXPECT_TRUE(report.AppPins());
  // Apple background hosts must not appear as (pinned) destinations.
  for (const DestinationReport& dest : report.destinations) {
    EXPECT_EQ(dest.hostname.find("apple.com"), std::string::npos);
    EXPECT_EQ(dest.hostname.find("icloud.com"), std::string::npos);
  }
}

TEST(PipelineTest, CircumventionCanBeDisabled) {
  const auto world = MakeWorld();
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  DynamicOptions opts;
  opts.circumvent = false;
  const DynamicReport report = RunDynamicAnalysis(app, world, opts);
  for (const DestinationReport& dest : report.destinations) {
    EXPECT_FALSE(dest.circumvented);
  }
}

}  // namespace
}  // namespace pinscope::dynamicanalysis

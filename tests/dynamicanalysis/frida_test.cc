#include "dynamicanalysis/frida.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace pinscope::dynamicanalysis {
namespace {

using pinscope::testing::MakePinningApp;
using pinscope::testing::MakeWorld;

TEST(HookabilityTest, PlatformStacksAreHookableOnTheirPlatform) {
  EXPECT_TRUE(IsHookable(tls::TlsStack::kOkHttp, appmodel::Platform::kAndroid));
  EXPECT_FALSE(IsHookable(tls::TlsStack::kOkHttp, appmodel::Platform::kIos));
  EXPECT_TRUE(IsHookable(tls::TlsStack::kNsUrlSession, appmodel::Platform::kIos));
  EXPECT_FALSE(IsHookable(tls::TlsStack::kNsUrlSession, appmodel::Platform::kAndroid));
  EXPECT_TRUE(IsHookable(tls::TlsStack::kCronet, appmodel::Platform::kAndroid));
  EXPECT_TRUE(IsHookable(tls::TlsStack::kCronet, appmodel::Platform::kIos));
}

TEST(HookabilityTest, CustomStacksAreNeverHookable) {
  EXPECT_FALSE(IsHookable(tls::TlsStack::kCustom, appmodel::Platform::kAndroid));
  EXPECT_FALSE(IsHookable(tls::TlsStack::kCustom, appmodel::Platform::kIos));
}

TEST(FridaTest, HookedPinnedDestinationDecrypts) {
  const auto world = MakeWorld();
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  net::MitmProxy proxy;
  const DeviceEmulator device = DeviceEmulator::Pixel3(&proxy.CaCertificate());
  util::Rng rng(1);
  const CircumventionRun run =
      RunWithPinningDisabled(app, world, device, proxy, RunOptions{}, rng);

  ASSERT_EQ(run.hooked_destinations.size(), 2u);  // both use OkHttp-family
  EXPECT_TRUE(run.unhookable_destinations.empty());
  bool pinned_decrypted = false;
  for (const net::Flow& f : run.capture.flows) {
    if (f.sni == "api.fixture.com" && f.decrypted_payload.has_value()) {
      pinned_decrypted = true;
      EXPECT_NE(f.decrypted_payload->find(device.identity().advertising_id),
                std::string::npos);
    }
  }
  EXPECT_TRUE(pinned_decrypted);
}

TEST(FridaTest, CustomStackStaysOpaque) {
  const auto world = MakeWorld();
  auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  app.behavior.destinations[0].stack = tls::TlsStack::kCustom;
  net::MitmProxy proxy;
  const DeviceEmulator device = DeviceEmulator::Pixel3(&proxy.CaCertificate());
  util::Rng rng(2);
  const CircumventionRun run =
      RunWithPinningDisabled(app, world, device, proxy, RunOptions{}, rng);

  EXPECT_EQ(run.unhookable_destinations,
            std::vector<std::string>{"api.fixture.com"});
  for (const net::Flow& f : run.capture.flows) {
    if (f.sni == "api.fixture.com") {
      EXPECT_FALSE(f.decrypted_payload.has_value());
    }
  }
}

TEST(FridaTest, HookDisablesValidationNotJustPins) {
  // A custom-trust destination (bundled store without proxy CA) must also
  // decrypt once the library's verify callback is stubbed out.
  auto world = MakeWorld();
  world.EnsureCustomPki("internal.fixture.com", "fixture");
  appmodel::App app;
  app.meta = pinscope::testing::FixtureMeta(appmodel::Platform::kAndroid);
  appmodel::DestinationBehavior d;
  d.hostname = "internal.fixture.com";
  d.custom_trust = true;
  d.stack = tls::TlsStack::kOkHttp;
  d.payload_template = "GET /internal";
  app.behavior.destinations.push_back(d);

  net::MitmProxy proxy;
  const DeviceEmulator device = DeviceEmulator::Pixel3(&proxy.CaCertificate());
  util::Rng rng(3);
  const CircumventionRun run =
      RunWithPinningDisabled(app, world, device, proxy, RunOptions{}, rng);
  ASSERT_EQ(run.capture.flows.size(), 1u);
  EXPECT_TRUE(run.capture.flows[0].decrypted_payload.has_value());
}

}  // namespace
}  // namespace pinscope::dynamicanalysis

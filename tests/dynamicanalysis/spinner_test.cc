#include "dynamicanalysis/spinner.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace pinscope::dynamicanalysis {
namespace {

using pinscope::testing::FixtureMeta;
using pinscope::testing::MakeWorld;

appmodel::App AppWithDest(appmodel::DestinationBehavior dest) {
  appmodel::App app;
  app.meta = FixtureMeta(appmodel::Platform::kAndroid);
  app.behavior.destinations.push_back(std::move(dest));
  return app;
}

SpinnerVerdict ProbeOne(const appmodel::App& app,
                        const appmodel::ServerWorld& world) {
  util::Rng rng(1);
  const auto results = RunSpinnerProbes(app, world, rng);
  EXPECT_EQ(results.size(), 1u);
  return results.empty() ? SpinnerVerdict::kNoPinning : results[0].verdict;
}

TEST(SpinnerTest, UnpinnedDestinationIsNoPinning) {
  const auto world = MakeWorld();
  appmodel::DestinationBehavior d;
  d.hostname = "www.fixture.com";
  EXPECT_EQ(ProbeOne(AppWithDest(d), world), SpinnerVerdict::kNoPinning);
}

TEST(SpinnerTest, CaPinIsDetected) {
  // The Spinner success case: a pin on the intermediate/root is visible
  // because a same-hierarchy decoy passes the pin but fails on hostname,
  // while a foreign-hierarchy decoy dies at the pin stage.
  const auto world = MakeWorld();
  const auto& chain = world.Find("api.fixture.com")->endpoint.chain;
  for (std::size_t idx : {std::size_t{1}, chain.size() - 1}) {
    appmodel::DestinationBehavior d;
    d.hostname = "api.fixture.com";
    d.pinned = true;
    d.pins = {tls::Pin::ForCertificate(chain[idx], tls::PinForm::kSpkiSha256)};
    EXPECT_EQ(ProbeOne(AppWithDest(d), world), SpinnerVerdict::kCaPinningDetected)
        << "chain index " << idx;
  }
}

TEST(SpinnerTest, LeafPinIsInvisible) {
  // The §2.2 limitation: leaf pins reject every probe at the pin stage,
  // indistinguishable from paranoid validation.
  const auto world = MakeWorld();
  appmodel::DestinationBehavior d;
  d.hostname = "api.fixture.com";
  d.pinned = true;
  d.pins = {tls::Pin::ForCertificate(world.Find("api.fixture.com")->endpoint.chain[0],
                                     tls::PinForm::kSpkiSha256)};
  EXPECT_EQ(ProbeOne(AppWithDest(d), world), SpinnerVerdict::kIndistinguishable);
}

TEST(SpinnerTest, MissingHostnameValidationIsVulnerable) {
  // Stone et al.'s headline finding: pinning with no hostname verification.
  const auto world = MakeWorld();
  appmodel::DestinationBehavior d;
  d.hostname = "api.fixture.com";
  auto app = AppWithDest(d);
  app.behavior.validates_hostname = false;
  EXPECT_EQ(ProbeOne(app, world), SpinnerVerdict::kVulnerable);
}

TEST(SpinnerTest, CaPinnedWithoutHostnameCheckIsVulnerable) {
  const auto world = MakeWorld();
  appmodel::DestinationBehavior d;
  d.hostname = "api.fixture.com";
  d.pinned = true;
  d.pins = {tls::Pin::ForCertificate(world.Find("api.fixture.com")->endpoint.chain.back(),
                                     tls::PinForm::kSpkiSha256)};
  auto app = AppWithDest(d);
  app.behavior.validates_hostname = false;
  EXPECT_EQ(ProbeOne(app, world), SpinnerVerdict::kVulnerable);
}

TEST(SpinnerTest, CustomTrustLooksIndistinguishable) {
  auto world = MakeWorld();
  world.EnsureCustomPki("internal.fixture.com", "fixture");
  appmodel::DestinationBehavior d;
  d.hostname = "internal.fixture.com";
  d.custom_trust = true;
  d.pinned = true;
  d.pins = {tls::Pin::ForCertificate(
      world.Find("internal.fixture.com")->endpoint.chain.front(),
      tls::PinForm::kSpkiSha256)};
  EXPECT_EQ(ProbeOne(AppWithDest(d), world), SpinnerVerdict::kIndistinguishable);
}

TEST(SpinnerTest, DecoyChainsAreValidForTheDecoyHost) {
  const auto world = MakeWorld();
  const auto decoy = world.MakeDecoyChain("api.fixture.com", "other.site.net");
  const auto store = x509::PublicCaCatalog::Instance().MozillaStore();
  EXPECT_TRUE(x509::ValidateChain(decoy, "other.site.net", util::kStudyEpoch, store)
                  .ok());
  EXPECT_FALSE(
      x509::ValidateChain(decoy, "api.fixture.com", util::kStudyEpoch, store).ok());
}

TEST(SpinnerTest, ForeignChainUsesDifferentAnchor) {
  const auto world = MakeWorld();
  const auto same = world.MakeDecoyChain("api.fixture.com", "a.net");
  const auto foreign = world.MakeForeignChain("api.fixture.com", "a.net");
  EXPECT_NE(same.back().subject().common_name(),
            foreign.back().subject().common_name());
}

}  // namespace
}  // namespace pinscope::dynamicanalysis

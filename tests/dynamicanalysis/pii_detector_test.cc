#include "dynamicanalysis/pii_detector.h"

#include <gtest/gtest.h>

namespace pinscope::dynamicanalysis {
namespace {

appmodel::DeviceIdentity Device() {
  appmodel::DeviceIdentity id;
  id.imei = "358240051111110";
  id.advertising_id = "cdda802e-fb9c-47ad-9866-0794d394c912";
  id.wifi_mac = "02:00:00:44:55:66";
  id.email = "tester@example.com";
  id.state = "Massachusetts";
  id.city = "Boston";
  id.lat_long = "42.3601,-71.0589";
  return id;
}

TEST(PiiDetectorTest, FindsKnownValues) {
  const auto found = DetectPii(
      "POST /collect idfa=cdda802e-fb9c-47ad-9866-0794d394c912&city=Boston",
      Device());
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0], appmodel::PiiType::kAdvertisingId);
  EXPECT_EQ(found[1], appmodel::PiiType::kCity);
}

TEST(PiiDetectorTest, NoFalsePositivesOnCleanPayload) {
  EXPECT_TRUE(DetectPii("GET / HTTP/1.1 host: example.com", Device()).empty());
}

TEST(PiiDetectorTest, EmptyIdentityValuesNeverMatch) {
  appmodel::DeviceIdentity blank;
  EXPECT_TRUE(DetectPii("anything at all", blank).empty());
}

TEST(PiiDetectorTest, AggregatesAcrossFlowsOfDestination) {
  net::Capture cap;
  net::Flow f1;
  f1.sni = "t.com";
  f1.decrypted_payload = "imei=358240051111110";
  net::Flow f2;
  f2.sni = "t.com";
  f2.decrypted_payload = "mail=tester@example.com";
  net::Flow undecrypted;
  undecrypted.sni = "t.com";
  net::Flow other;
  other.sni = "u.com";
  other.decrypted_payload = "city=Boston";
  cap.flows = {f1, f2, undecrypted, other};

  const auto found = DetectPiiForDestination(cap, "t.com", Device());
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0], appmodel::PiiType::kImei);
  EXPECT_EQ(found[1], appmodel::PiiType::kEmail);
}

TEST(PiiDetectorTest, DuplicateHitsCollapse) {
  net::Capture cap;
  net::Flow f;
  f.sni = "t.com";
  f.decrypted_payload = "a=Boston b=Boston";
  cap.flows = {f, f};
  EXPECT_EQ(DetectPiiForDestination(cap, "t.com", Device()).size(), 1u);
}

TEST(PiiDetectorDetailedTest, AttributesFindingsToFormBody) {
  const std::string payload =
      "POST /v1/collect HTTP/1.1\r\nHost: t.com\r\n"
      "Content-Type: application/x-www-form-urlencoded\r\n\r\n"
      "session=1&idfa=cdda802e-fb9c-47ad-9866-0794d394c912";
  const auto findings = DetectPiiDetailed(payload, Device());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, appmodel::PiiType::kAdvertisingId);
  EXPECT_EQ(findings[0].location, PiiLocation::kFormBody);
  EXPECT_EQ(findings[0].key, "idfa");
}

TEST(PiiDetectorDetailedTest, AttributesFindingsToQueryAndHeader) {
  const std::string payload =
      "GET /pixel?city=Boston HTTP/1.1\r\nHost: t.com\r\n"
      "X-Device-Mac: 02:00:00:44:55:66\r\n\r\n";
  const auto findings = DetectPiiDetailed(payload, Device());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].location, PiiLocation::kHeader);
  EXPECT_EQ(findings[0].key, "X-Device-Mac");
  EXPECT_EQ(findings[1].location, PiiLocation::kQueryParam);
  EXPECT_EQ(findings[1].key, "city");
}

TEST(PiiDetectorDetailedTest, NonHttpPayloadFallsBackToRaw) {
  const auto findings =
      DetectPiiDetailed("binaryish blob imei=358240051111110", Device());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].location, PiiLocation::kRawBytes);
  EXPECT_TRUE(findings[0].key.empty());
}

TEST(PiiDetectorDetailedTest, FreeFormBodyReportsRawBytes) {
  const std::string payload =
      "POST /log HTTP/1.1\r\nHost: t.com\r\nContent-Type: application/json\r\n\r\n"
      "{\"mail\":\"tester@example.com\"}";
  const auto findings = DetectPiiDetailed(payload, Device());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, appmodel::PiiType::kEmail);
  EXPECT_EQ(findings[0].location, PiiLocation::kRawBytes);
}

TEST(PiiDetectorDetailedTest, LocationNamesAreStable) {
  EXPECT_EQ(PiiLocationName(PiiLocation::kQueryParam), "query-param");
  EXPECT_EQ(PiiLocationName(PiiLocation::kRawBytes), "raw-bytes");
}

}  // namespace
}  // namespace pinscope::dynamicanalysis

#include "dynamicanalysis/detector.h"

#include <gtest/gtest.h>

namespace pinscope::dynamicanalysis {
namespace {

using tls::ContentType;
using tls::Direction;
using tls::Record;

net::Flow Tls12Flow(bool with_appdata, tls::Closure closure) {
  net::Flow f;
  f.version = tls::TlsVersion::kTls12;
  f.sni = "host.test.com";
  f.closure = closure;
  f.records.push_back({Direction::kClientToServer, ContentType::kHandshake,
                       ContentType::kHandshake, 300, {}, 0});
  f.records.push_back({Direction::kServerToClient, ContentType::kHandshake,
                       ContentType::kHandshake, 3000, {}, 1});
  if (with_appdata) {
    f.records.push_back({Direction::kClientToServer, ContentType::kApplicationData,
                         ContentType::kApplicationData, 500, {}, 2});
  }
  return f;
}

// TLS 1.3 flow where the client sends the given wire app-data record lengths.
net::Flow Tls13Flow(const std::vector<std::uint32_t>& client_appdata_lengths,
                    tls::Closure closure) {
  net::Flow f;
  f.version = tls::TlsVersion::kTls13;
  f.sni = "host.test.com";
  f.closure = closure;
  f.records.push_back({Direction::kClientToServer, ContentType::kHandshake,
                       ContentType::kHandshake, 300, {}, 0});
  f.records.push_back({Direction::kServerToClient, ContentType::kHandshake,
                       ContentType::kHandshake, 122, {}, 1});
  f.records.push_back({Direction::kServerToClient, ContentType::kApplicationData,
                       ContentType::kHandshake, 3200, {}, 2});
  for (std::uint32_t len : client_appdata_lengths) {
    f.records.push_back({Direction::kClientToServer, ContentType::kApplicationData,
                         ContentType::kApplicationData, len, {}, 3});
  }
  return f;
}

TEST(UsedConnectionTest, Tls12UsesApplicationDataPresence) {
  EXPECT_TRUE(IsUsedConnection(Tls12Flow(true, tls::Closure::kCleanFin)));
  EXPECT_FALSE(IsUsedConnection(Tls12Flow(false, tls::Closure::kCleanFin)));
}

TEST(UsedConnectionTest, Tls13MoreThanTwoClientRecordsIsUsed) {
  EXPECT_TRUE(IsUsedConnection(
      Tls13Flow({74, 600, tls::kEncryptedAlertWireLength}, tls::Closure::kCleanFin)));
}

TEST(UsedConnectionTest, Tls13SecondRecordNotAlertSizedIsUsed) {
  // Finished + one data record of non-alert length.
  EXPECT_TRUE(IsUsedConnection(Tls13Flow({74, 612}, tls::Closure::kCleanFin)));
}

TEST(UsedConnectionTest, Tls13FinishedPlusCloseNotifyIsUnused) {
  // The §4.2.2 confounder: a completed but idle connection — second client
  // record is exactly an encrypted alert.
  EXPECT_FALSE(IsUsedConnection(
      Tls13Flow({74, tls::kEncryptedAlertWireLength}, tls::Closure::kCleanFin)));
}

TEST(UsedConnectionTest, Tls13SingleAlertIsUnused) {
  // A pin-failure abort: one disguised alert record.
  EXPECT_FALSE(IsUsedConnection(
      Tls13Flow({tls::kEncryptedAlertWireLength}, tls::Closure::kClientReset)));
}

TEST(FailedConnectionTest, UnusedAbortedIsFailed) {
  EXPECT_TRUE(IsFailedConnection(
      Tls13Flow({tls::kEncryptedAlertWireLength}, tls::Closure::kClientReset)));
  EXPECT_TRUE(IsFailedConnection(Tls12Flow(false, tls::Closure::kCleanFin)));
}

TEST(FailedConnectionTest, UsedConnectionIsNeverFailed) {
  EXPECT_FALSE(IsFailedConnection(Tls12Flow(true, tls::Closure::kClientReset)));
}

TEST(FailedConnectionTest, OpenUnusedConnectionIsNotFailed) {
  // Still open at capture end: may simply be idle (limited recording time).
  EXPECT_FALSE(IsFailedConnection(Tls12Flow(false, tls::Closure::kOpen)));
}

net::Capture CaptureOf(const std::vector<net::Flow>& flows) {
  net::Capture c;
  c.flows = flows;
  return c;
}

TEST(DetectPinningTest, PinnedDestinationRequiresDifferential) {
  // Used without MITM, always failed with MITM → pinned.
  const auto baseline = CaptureOf({Tls13Flow({74, 612}, tls::Closure::kCleanFin)});
  const auto mitm = CaptureOf(
      {Tls13Flow({tls::kEncryptedAlertWireLength}, tls::Closure::kClientReset)});
  const DetectionResult result = DetectPinning(baseline, mitm);
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_TRUE(result.verdicts[0].pinned);
  EXPECT_TRUE(result.AppPins());
  EXPECT_EQ(result.PinnedDestinations(),
            std::vector<std::string>{"host.test.com"});
}

TEST(DetectPinningTest, UsedUnderMitmIsNotPinned) {
  const auto baseline = CaptureOf({Tls13Flow({74, 612}, tls::Closure::kCleanFin)});
  const auto mitm = CaptureOf({Tls13Flow({74, 612}, tls::Closure::kCleanFin)});
  const DetectionResult result = DetectPinning(baseline, mitm);
  EXPECT_FALSE(result.verdicts[0].pinned);
  EXPECT_EQ(result.UnpinnedDestinations(),
            std::vector<std::string>{"host.test.com"});
}

TEST(DetectPinningTest, UnusedBaselineNeverMarksPinned) {
  // Server-side failure in both runs must not read as pinning.
  const auto baseline = CaptureOf(
      {Tls13Flow({tls::kEncryptedAlertWireLength}, tls::Closure::kClientReset)});
  const auto mitm = CaptureOf(
      {Tls13Flow({tls::kEncryptedAlertWireLength}, tls::Closure::kClientReset)});
  EXPECT_FALSE(DetectPinning(baseline, mitm).AppPins());
}

TEST(DetectPinningTest, RedundantConnectionsDoNotConfuseDetection) {
  // Baseline: one used + one idle connection. MITM: all failed → pinned.
  const auto baseline = CaptureOf(
      {Tls13Flow({74, 612}, tls::Closure::kCleanFin),
       Tls13Flow({74, tls::kEncryptedAlertWireLength}, tls::Closure::kCleanFin)});
  const auto mitm = CaptureOf(
      {Tls13Flow({tls::kEncryptedAlertWireLength}, tls::Closure::kClientReset),
       Tls13Flow({tls::kEncryptedAlertWireLength}, tls::Closure::kClientReset)});
  EXPECT_TRUE(DetectPinning(baseline, mitm).AppPins());
}

TEST(DetectPinningTest, AnySuccessfulMitmConnectionClearsDestination) {
  const auto baseline = CaptureOf({Tls13Flow({74, 612}, tls::Closure::kCleanFin)});
  const auto mitm = CaptureOf(
      {Tls13Flow({tls::kEncryptedAlertWireLength}, tls::Closure::kClientReset),
       Tls13Flow({74, 612}, tls::Closure::kCleanFin)});
  EXPECT_FALSE(DetectPinning(baseline, mitm).AppPins());
}

TEST(DetectPinningTest, DestinationAbsentUnderMitmIsNotPinned) {
  const auto baseline = CaptureOf({Tls13Flow({74, 612}, tls::Closure::kCleanFin)});
  const DetectionResult result = DetectPinning(baseline, CaptureOf({}));
  EXPECT_FALSE(result.AppPins());
  EXPECT_FALSE(result.verdicts[0].seen_mitm);
}

TEST(DetectPinningTest, ExclusionRulesDropHosts) {
  auto flow = Tls13Flow({74, 612}, tls::Closure::kCleanFin);
  flow.sni = "gsp-ssl.icloud.com";
  const auto baseline = CaptureOf({flow});
  auto failed = Tls13Flow({tls::kEncryptedAlertWireLength}, tls::Closure::kClientReset);
  failed.sni = "gsp-ssl.icloud.com";
  const auto mitm = CaptureOf({failed});
  const DetectionResult result =
      DetectPinning(baseline, mitm, ExclusionRules::ForIos({}));
  EXPECT_TRUE(result.verdicts.empty());
}

TEST(DetectPinningTest, ExclusionScopes) {
  ExclusionRules rules = ExclusionRules::ForIos({"links.myapp.com"});
  // Associated destinations are excluded exactly — sibling hosts of the same
  // registrable domain stay attributable (first-party pinning must remain
  // visible).
  EXPECT_TRUE(rules.IsExcluded("links.myapp.com"));
  EXPECT_FALSE(rules.IsExcluded("api.myapp.com"));
  // Apple background traffic is excluded domain-wide.
  EXPECT_TRUE(rules.IsExcluded("init.itunes.apple.com"));
  EXPECT_TRUE(rules.IsExcluded("other-host.apple.com"));
  EXPECT_TRUE(rules.IsExcluded("gsp-ssl.icloud.com"));
  EXPECT_FALSE(rules.IsExcluded("other.com"));
}

TEST(DetectPinningTest, EmptySniFlowsAreIgnored) {
  auto flow = Tls13Flow({74, 612}, tls::Closure::kCleanFin);
  flow.sni.clear();
  const DetectionResult result = DetectPinning(CaptureOf({flow}), CaptureOf({}));
  EXPECT_TRUE(result.verdicts.empty());
}

}  // namespace
}  // namespace pinscope::dynamicanalysis

#include "dynamicanalysis/device.h"

#include <gtest/gtest.h>

#include "dynamicanalysis/detector.h"
#include "net/mitm_proxy.h"
#include "testing/fixtures.h"

namespace pinscope::dynamicanalysis {
namespace {

using pinscope::testing::MakePinningApp;
using pinscope::testing::MakePlainApp;
using pinscope::testing::MakeWorld;

TEST(DeviceTest, FactoryConfigurations) {
  const DeviceEmulator pixel = DeviceEmulator::Pixel3(nullptr);
  EXPECT_EQ(pixel.platform(), appmodel::Platform::kAndroid);
  EXPECT_EQ(pixel.model(), "Pixel 3");
  EXPECT_EQ(pixel.os_version(), "Android 11");

  const DeviceEmulator iphone = DeviceEmulator::IPhoneX(nullptr);
  EXPECT_EQ(iphone.platform(), appmodel::Platform::kIos);
  EXPECT_EQ(iphone.os_version(), "iOS 13.6");
  EXPECT_NE(pixel.identity().advertising_id, iphone.identity().advertising_id);
}

TEST(DeviceTest, BaselineRunCapturesAppDestinations) {
  const auto world = MakeWorld();
  const DeviceEmulator device = DeviceEmulator::Pixel3(nullptr);
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  util::Rng rng(1);
  const net::Capture cap = device.RunApp(app, world, RunOptions{}, rng);
  const auto dests = cap.Destinations();
  EXPECT_EQ(dests, (std::vector<std::string>{"api.fixture.com", "tracker.ads.com"}));
  for (const net::Flow& f : cap.flows) {
    EXPECT_EQ(f.origin, net::FlowOrigin::kApp);
    EXPECT_FALSE(f.decrypted_payload.has_value());  // passive capture
  }
}

TEST(DeviceTest, PayloadPiiIsExpandedWithDeviceIdentity) {
  auto world = MakeWorld();
  const DeviceEmulator device = DeviceEmulator::Pixel3(nullptr);
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  net::MitmProxy proxy;
  // Give the client the proxy CA so the tracker flow decrypts.
  const DeviceEmulator trusting = DeviceEmulator::Pixel3(&proxy.CaCertificate());
  RunOptions opts;
  opts.proxy = &proxy;
  util::Rng rng(2);
  const net::Capture cap = trusting.RunApp(app, world, opts, rng);
  bool saw_ad_id = false;
  for (const net::Flow& f : cap.flows) {
    if (f.sni == "tracker.ads.com" && f.decrypted_payload.has_value()) {
      saw_ad_id = f.decrypted_payload->find(trusting.identity().advertising_id) !=
                  std::string::npos;
    }
  }
  EXPECT_TRUE(saw_ad_id);
  (void)device;
}

TEST(DeviceTest, MitmRunFailsPinnedAndDecryptsUnpinned) {
  const auto world = MakeWorld();
  net::MitmProxy proxy;
  const DeviceEmulator device = DeviceEmulator::Pixel3(&proxy.CaCertificate());
  const auto app = MakePinningApp(world, appmodel::Platform::kAndroid);
  RunOptions opts;
  opts.proxy = &proxy;
  util::Rng rng(3);
  const net::Capture cap = device.RunApp(app, world, opts, rng);
  for (const net::Flow* f : cap.FlowsTo("api.fixture.com")) {
    EXPECT_TRUE(IsFailedConnection(*f));
  }
  bool tracker_used = false;
  for (const net::Flow* f : cap.FlowsTo("tracker.ads.com")) {
    tracker_used |= IsUsedConnection(*f);
  }
  EXPECT_TRUE(tracker_used);
}

TEST(DeviceTest, IosRunsIncludeAppleBackgroundTraffic) {
  auto world = MakeWorld();
  for (const std::string& host : AppleBackgroundDomains()) {
    world.EnsureDefaultPki(host, "apple");
  }
  const DeviceEmulator device = DeviceEmulator::IPhoneX(nullptr);
  const auto app = MakePlainApp(world, appmodel::Platform::kIos);
  util::Rng rng(4);
  const net::Capture cap = device.RunApp(app, world, RunOptions{}, rng);
  bool saw_background = false;
  for (const net::Flow& f : cap.flows) {
    if (f.origin == net::FlowOrigin::kOsBackground) saw_background = true;
  }
  EXPECT_TRUE(saw_background);
}

TEST(DeviceTest, OsServicesIgnoreUserInstalledProxyCa) {
  // §4.5: Apple background traffic appears pinned under MITM because system
  // services do not honor the user-installed CA.
  auto world = MakeWorld();
  for (const std::string& host : AppleBackgroundDomains()) {
    world.EnsureDefaultPki(host, "apple");
  }
  net::MitmProxy proxy;
  const DeviceEmulator device = DeviceEmulator::IPhoneX(&proxy.CaCertificate());
  const auto app = MakePlainApp(world, appmodel::Platform::kIos);
  RunOptions opts;
  opts.proxy = &proxy;
  util::Rng rng(5);
  const net::Capture cap = device.RunApp(app, world, opts, rng);
  for (const net::Flow& f : cap.flows) {
    if (f.origin == net::FlowOrigin::kOsBackground) {
      EXPECT_TRUE(IsFailedConnection(f)) << f.sni;
    }
  }
}

TEST(DeviceTest, AssociatedDomainTrafficSuppressedBySettleDelay) {
  auto world = MakeWorld();
  auto app = MakePlainApp(world, appmodel::Platform::kIos);
  app.behavior.associated_domains = {"www.fixture.com"};

  const DeviceEmulator device = DeviceEmulator::IPhoneX(nullptr);
  util::Rng rng(6);
  RunOptions no_settle;
  const net::Capture immediate = device.RunApp(app, world, no_settle, rng);
  bool saw_assoc = false;
  for (const net::Flow& f : immediate.flows) {
    if (f.origin == net::FlowOrigin::kAssociatedDomains) saw_assoc = true;
  }
  EXPECT_TRUE(saw_assoc);

  RunOptions settled;
  settled.settle_seconds = 120;
  const net::Capture after = device.RunApp(app, world, settled, rng);
  for (const net::Flow& f : after.flows) {
    EXPECT_NE(f.origin, net::FlowOrigin::kAssociatedDomains);
  }
}

TEST(DeviceTest, UnresolvableDestinationsProduceNoFlows) {
  appmodel::ServerWorld empty_world(1);
  const auto world = MakeWorld();
  const auto app = MakePlainApp(world, appmodel::Platform::kAndroid);
  const DeviceEmulator device = DeviceEmulator::Pixel3(nullptr);
  util::Rng rng(7);
  const net::Capture cap = device.RunApp(app, empty_world, RunOptions{}, rng);
  EXPECT_TRUE(cap.flows.empty());
}

TEST(DeviceTest, PlatformMismatchThrows) {
  const auto world = MakeWorld();
  const auto app = MakePlainApp(world, appmodel::Platform::kIos);
  const DeviceEmulator device = DeviceEmulator::Pixel3(nullptr);
  util::Rng rng(8);
  EXPECT_THROW((void)device.RunApp(app, world, RunOptions{}, rng), util::Error);
}

TEST(DeviceTest, CustomTrustDestinationRejectsProxy) {
  auto world = MakeWorld();
  world.EnsureCustomPki("internal.fixture.com", "fixture");
  appmodel::App app;
  app.meta = pinscope::testing::FixtureMeta(appmodel::Platform::kAndroid);
  appmodel::DestinationBehavior d;
  d.hostname = "internal.fixture.com";
  d.custom_trust = true;
  app.behavior.destinations.push_back(d);

  net::MitmProxy proxy;
  const DeviceEmulator device = DeviceEmulator::Pixel3(&proxy.CaCertificate());
  util::Rng rng(9);

  // Baseline succeeds: the app trusts its own root.
  const net::Capture baseline = device.RunApp(app, world, RunOptions{}, rng);
  ASSERT_FALSE(baseline.flows.empty());
  EXPECT_TRUE(IsUsedConnection(baseline.flows.front()));

  RunOptions opts;
  opts.proxy = &proxy;
  const net::Capture mitm = device.RunApp(app, world, opts, rng);
  ASSERT_FALSE(mitm.flows.empty());
  EXPECT_TRUE(IsFailedConnection(mitm.flows.front()));
}

}  // namespace
}  // namespace pinscope::dynamicanalysis

// EventLog / EventScope unit suite: severity grammar, JSONL rendering,
// logical-key ordering, null-safe emission, the seq-before-filter rule that
// makes filtered journals byte-exact subsequences, and sharded concurrent
// deposit determinism.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"

namespace pinscope::obs {
namespace {

TEST(SeverityTest, NamesAndParseRoundTrip) {
  for (const Severity s : {Severity::kDebug, Severity::kInfo, Severity::kDecision,
                           Severity::kWarn, Severity::kError}) {
    const auto parsed = ParseSeverity(SeverityName(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(ParseSeverity("verbose").has_value());
  EXPECT_FALSE(ParseSeverity("INFO").has_value());
  EXPECT_FALSE(ParseSeverity("").has_value());
}

TEST(SeverityTest, OrderPutsDecisionAboveInfo) {
  EXPECT_LT(Severity::kDebug, Severity::kInfo);
  EXPECT_LT(Severity::kInfo, Severity::kDecision);
  EXPECT_LT(Severity::kDecision, Severity::kWarn);
  EXPECT_LT(Severity::kWarn, Severity::kError);
}

TEST(LogValueTest, RendersEveryTypeAsJson) {
  EXPECT_EQ(LogValue("plain").RenderJson(), "\"plain\"");
  EXPECT_EQ(LogValue("q\"b\\s").RenderJson(), "\"q\\\"b\\\\s\"");
  EXPECT_EQ(LogValue(std::string("\n")).RenderJson(), "\"\\u000a\"");
  EXPECT_EQ(LogValue(-7).RenderJson(), "-7");
  EXPECT_EQ(LogValue(std::uint64_t{18446744073709551615u}).RenderJson(),
            "18446744073709551615");
  EXPECT_EQ(LogValue(true).RenderJson(), "true");
  EXPECT_EQ(LogValue(false).RenderJson(), "false");
  EXPECT_EQ(LogValue(0.5).RenderJson(), "0.5");
}

TEST(EventLogTest, RenderJsonLineIsStable) {
  LogEvent e;
  e.platform = "android";
  e.app_id = "com.example.app";
  e.phase = "static";
  e.seq = 3;
  e.severity = Severity::kDecision;
  e.name = "static.pin_found";
  e.fields.push_back({"pin", LogValue("sha256/AAAA=")});
  e.fields.push_back({"offset", LogValue(std::uint64_t{128})});
  e.fields.push_back({"well_formed", LogValue(true)});
  EXPECT_EQ(EventLog::RenderJsonLine(e),
            "{\"platform\": \"android\", \"app\": \"com.example.app\", "
            "\"phase\": \"static\", \"seq\": 3, \"severity\": \"decision\", "
            "\"event\": \"static.pin_found\", \"fields\": "
            "{\"pin\": \"sha256/AAAA=\", \"offset\": 128, "
            "\"well_formed\": true}}");
}

TEST(EventLogTest, FieldlessEventOmitsFieldsObject) {
  LogEvent e;
  e.name = "study.start";
  EXPECT_EQ(EventLog::RenderJsonLine(e),
            "{\"platform\": \"\", \"app\": \"\", \"phase\": \"\", \"seq\": 0, "
            "\"severity\": \"info\", \"event\": \"study.start\"}");
}

TEST(EventLogTest, SortsByLogicalKeysNotArrival) {
  EventLog log(Severity::kDebug);
  EventScope late(&log, "ios", "z.app", "static");
  EventScope early(&log, "android", "a.app", "static");
  EventScope study(&log, "", "", "study");
  late.Emit(Severity::kInfo, "third");
  early.Emit(Severity::kInfo, "second");
  study.Emit(Severity::kInfo, "first");

  const std::vector<LogEvent> sorted = log.SortedEvents();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].name, "first");   // "" platform sorts ahead of apps.
  EXPECT_EQ(sorted[1].name, "second");  // android < ios.
  EXPECT_EQ(sorted[2].name, "third");
}

TEST(EventLogTest, ScopeSequencePreservesEmissionOrder) {
  EventLog log(Severity::kDebug);
  EventScope scope(&log, "android", "app", "dynamic.detect");
  for (int i = 0; i < 5; ++i) {
    scope.Emit(Severity::kInfo, "e" + std::to_string(i));
  }
  const std::vector<LogEvent> sorted = log.SortedEvents();
  ASSERT_EQ(sorted.size(), 5u);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].seq, i);
    EXPECT_EQ(sorted[i].name, "e" + std::to_string(i));
  }
}

TEST(EventLogTest, FilteringDropsWithoutRenumbering) {
  // The same emission sequence journaled at two levels: the decision-level
  // journal must be a byte-exact subsequence (same seq values) of the full
  // debug-level one.
  auto emit_all = [](EventLog& log) {
    EventScope scope(&log, "android", "app", "static");
    scope.Emit(Severity::kDebug, "a");
    scope.Emit(Severity::kDecision, "b");
    scope.Emit(Severity::kInfo, "c");
    scope.Emit(Severity::kWarn, "d");
  };
  EventLog full(Severity::kDebug);
  EventLog filtered(Severity::kDecision);
  emit_all(full);
  emit_all(filtered);

  const std::string full_jsonl = full.ToJsonl();
  ASSERT_EQ(filtered.EventCount(), 2u);
  std::size_t pos = 0;
  for (const LogEvent& e : filtered.SortedEvents()) {
    const std::string line = EventLog::RenderJsonLine(e) + "\n";
    const std::size_t found = full_jsonl.find(line, pos);
    ASSERT_NE(found, std::string::npos) << line;
    pos = found + line.size();
  }
  // And the seq gap proves the dropped events still consumed numbers.
  const std::vector<LogEvent> kept = filtered.SortedEvents();
  EXPECT_EQ(kept[0].seq, 1u);  // "b"
  EXPECT_EQ(kept[1].seq, 3u);  // "d"
}

TEST(EventLogTest, DefaultMinSeverityIsInfo) {
  EventLog log;
  EXPECT_EQ(log.min_severity(), Severity::kInfo);
  EXPECT_FALSE(log.Enabled(Severity::kDebug));
  EXPECT_TRUE(log.Enabled(Severity::kInfo));
  EXPECT_TRUE(log.Enabled(Severity::kError));
}

TEST(EventScopeTest, NullScopesAreSafeNoOps) {
  EventScope detached;  // no log at all
  detached.Emit(Severity::kError, "dropped");
  EmitTo(nullptr, Severity::kError, "also dropped");
  EventScope over_null(nullptr, "android", "app", "static");
  over_null.Emit(Severity::kError, "still dropped");
  EmitTo(&over_null, Severity::kError, "and this");
  SUCCEED();
}

TEST(EventLogTest, FindFieldReturnsFirstMatchOrNull) {
  LogEvent e;
  e.fields.push_back({"host", LogValue("a.example.com")});
  e.fields.push_back({"host", LogValue("b.example.com")});
  const LogValue* v = FindField(e, "host");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->AsString(), "a.example.com");
  EXPECT_EQ(FindField(e, "missing"), nullptr);
}

TEST(EventLogTest, ConcurrentScopesMergeDeterministically) {
  // N threads, each with its own scope identity, each emitting a fixed
  // sequence: the serialized journal must not depend on the interleaving.
  auto run_once = []() {
    EventLog log(Severity::kDebug);
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t) {
      workers.emplace_back([&log, t]() {
        EventScope scope(&log, t % 2 == 0 ? "android" : "ios",
                         "app" + std::to_string(t), "static");
        for (int i = 0; i < 50; ++i) {
          scope.Emit(Severity::kInfo, "event" + std::to_string(i),
                     {{"i", LogValue(std::int64_t{i})}});
        }
      });
    }
    for (std::thread& w : workers) w.join();
    return log.ToJsonl();
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_EQ(first, run_once());
  // 8 threads x 50 events, all present.
  std::size_t lines = 0;
  for (const char c : first) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 400u);
}

}  // namespace
}  // namespace pinscope::obs

// Unit suite for the live-run telemetry sampler (obs/telemetry.h) and the
// log2-percentile machinery it leans on (obs/metrics.h Quantile): flag
// parsing, bounded flight-recorder ring, watchdog fire-exactly-once + re-arm,
// heartbeat monotonicity, atomic live-metrics refresh, straggler ordering,
// and the one-octave quantile error bound. Every test drives Tick() manually
// (interval_ms = 0, the documented manual mode) so tick counts are exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/process.h"
#include "obs/telemetry.h"

namespace pinscope::obs {
namespace {

std::filesystem::path TempPath(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("pinscope_telemetry_" + name);
}

std::string Slurp(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TelemetryOptions ManualOptions() {
  TelemetryOptions opts;
  opts.interval_ms = 0;  // manual mode: the test owns every Tick()
  return opts;
}

TEST(ParseProgressModeTest, AcceptsExactlyTheDocumentedSpellings) {
  EXPECT_EQ(ParseProgressMode("off"), ProgressMode::kOff);
  EXPECT_EQ(ParseProgressMode("plain"), ProgressMode::kPlain);
  EXPECT_EQ(ParseProgressMode("tty"), ProgressMode::kTty);
  EXPECT_FALSE(ParseProgressMode("").has_value());
  EXPECT_FALSE(ParseProgressMode("Plain").has_value());
  EXPECT_FALSE(ParseProgressMode("bar").has_value());
}

TEST(TelemetryKeyTest, PlatformRankAndIndexNeverCollide) {
  EXPECT_NE(TelemetryKey(0, 5), TelemetryKey(1, 5));
  EXPECT_NE(TelemetryKey(0, 5), TelemetryKey(0, 6));
  EXPECT_EQ(TelemetryKey(1, 7), (std::uint64_t{1} << 48) | 7u);
}

TEST(Log2BoundsTest, PowersOfTwoFrom16UsToOneMinute) {
  const std::vector<double>& bounds = MetricsRegistry::Log2DurationBoundsUs();
  ASSERT_EQ(bounds.size(), 23u);  // 2^4 .. 2^26
  EXPECT_DOUBLE_EQ(bounds.front(), 16.0);
  EXPECT_DOUBLE_EQ(bounds.back(), static_cast<double>(1 << 26));
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], 2.0 * bounds[i - 1]) << "octave broken at " << i;
  }
}

TEST(QuantileTest, EmptyHistogramIsZeroAndSingleValueIsExact) {
  MetricsRegistry registry;
  Histogram h = registry.histogram(
      "phase.q", MetricsRegistry::Log2DurationBoundsUs());
  EXPECT_DOUBLE_EQ(registry.Snapshot().histograms.at("phase.q").Quantile(0.5),
                   0.0);
  h.Record(300.0);
  const HistogramSnapshot snap = registry.Snapshot().histograms.at("phase.q");
  // One sample: every quantile is clamped into [min, max] = [300, 300].
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 300.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 300.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 300.0);
}

TEST(QuantileTest, Log2BucketsBoundTheErrorByOneOctave) {
  // Deterministic LCG sample spanning several octaves; the estimate and the
  // exact order statistic land in the same log2 bucket, so the ratio between
  // them can never exceed 2 (the bound the phase.* percentiles advertise).
  std::vector<double> values;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    values.push_back(20.0 + static_cast<double>(state % 1000000));
  }
  MetricsRegistry registry;
  Histogram h = registry.histogram(
      "phase.err", MetricsRegistry::Log2DurationBoundsUs());
  for (const double v : values) h.Record(v);
  const HistogramSnapshot snap = registry.Snapshot().histograms.at("phase.err");

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const double target = q * static_cast<double>(sorted.size());
    const auto rank = static_cast<std::size_t>(
        std::max(0.0, std::ceil(target) - 1.0));
    const double exact = sorted[std::min(rank, sorted.size() - 1)];
    const double estimate = snap.Quantile(q);
    EXPECT_LE(estimate, exact * 2.0 + 1e-9) << "q=" << q;
    EXPECT_GE(estimate, exact * 0.5 - 1e-9) << "q=" << q;
    EXPECT_GE(estimate, snap.min);
    EXPECT_LE(estimate, snap.max);
  }
}

TEST(TelemetryTest, RingStaysBoundedOverAHundredThousandAppStream) {
  TelemetryOptions opts = ManualOptions();
  opts.ring_capacity = 64;
  Telemetry telemetry(nullptr, opts);
  // 100k chains stream through; a tick every 10 completions. The recorder
  // must remember only the newest `ring_capacity` frames, no matter how long
  // the run.
  constexpr std::uint64_t kApps = 100000;
  for (std::uint64_t i = 0; i < kApps; ++i) {
    telemetry.OnItemDone(i);
    if (i % 10 == 9) telemetry.Tick();
  }
  EXPECT_EQ(telemetry.done(), kApps);
  EXPECT_EQ(telemetry.ticks(), kApps / 10);
  const std::vector<TelemetryFrame> frames = telemetry.Frames();
  ASSERT_EQ(frames.size(), 64u);
  // Oldest-first, contiguous, ending at the newest tick.
  EXPECT_EQ(frames.back().tick, kApps / 10);
  EXPECT_EQ(frames.front().tick, kApps / 10 - 63);
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].tick, frames[i - 1].tick + 1);
    EXPECT_GE(frames[i].done, frames[i - 1].done);
  }
}

TEST(TelemetryTest, FramesCarryCounterDeltasAndStageCounts) {
  MetricsRegistry registry;
  Telemetry telemetry(&registry, ManualOptions());
  Counter scans = registry.counter("scan.files");
  scans.Add(5);
  telemetry.OnStageStart(TelemetryKey(0, 0), "android", "com.a", "static");
  telemetry.OnStageEnd(TelemetryKey(0, 0), "static");
  telemetry.Tick();
  scans.Add(3);
  telemetry.Tick();

  const std::vector<TelemetryFrame> frames = telemetry.Frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].counter_deltas.at("scan.files"), 5u);
  EXPECT_EQ(frames[0].stage_done.at("static"), 1u);
  // Only counters that moved this tick appear in the delta map.
  EXPECT_EQ(frames[1].counter_deltas.at("scan.files"), 3u);
  EXPECT_EQ(frames[1].counter_deltas.size(), 1u);
  // RSS gauges were republished into the registry by the tick itself. VmRSS
  // is batched per-thread in /proc, so it can momentarily read a few pages
  // above VmHWM — compare with page-batching slack, not exactly.
  constexpr std::uint64_t kRssSlack = 4u << 20;
  EXPECT_GT(frames[1].rss_bytes, 0u);
  EXPECT_GE(frames[1].peak_rss_bytes + kRssSlack, frames[1].rss_bytes);
}

TEST(TelemetryTest, WatchdogFiresExactlyOncePerStallAndRearmsOnProgress) {
  TelemetryOptions opts = ManualOptions();
  opts.stall_ticks = 3;
  Telemetry telemetry(nullptr, opts);
  telemetry.AddTotal(2);
  telemetry.OnStageStart(TelemetryKey(0, 1), "android", "com.slow", "dynamic");

  // Ten stalled ticks: the threshold crossing fires once, never again while
  // the same stall persists.
  for (int i = 0; i < 10; ++i) telemetry.Tick();
  EXPECT_EQ(telemetry.watchdog_fires(), 1u);

  // Progress resumes: the chain finishes, the watchdog notes the resume and
  // re-arms.
  telemetry.OnItemDone(TelemetryKey(0, 1));
  telemetry.Tick();
  EXPECT_EQ(telemetry.watchdog_fires(), 1u);

  // A second, distinct stall fires a second time.
  telemetry.OnStageStart(TelemetryKey(1, 0), "ios", "com.slower", "static");
  for (int i = 0; i < 10; ++i) telemetry.Tick();
  EXPECT_EQ(telemetry.watchdog_fires(), 2u);

  // The event channel names both stragglers (app + stage), warn severity,
  // plus one resume note — and it is telemetry's own channel, not a journal.
  const std::vector<LogEvent> events = telemetry.events().SortedEvents();
  std::vector<const LogEvent*> stalls;
  std::vector<const LogEvent*> resumes;
  for (const LogEvent& e : events) {
    if (e.name == "telemetry.stall") stalls.push_back(&e);
    if (e.name == "telemetry.resume") resumes.push_back(&e);
  }
  ASSERT_EQ(stalls.size(), 2u);
  ASSERT_EQ(resumes.size(), 1u);
  EXPECT_EQ(stalls[0]->severity, Severity::kWarn);
  const LogValue* app = FindField(*stalls[0], "straggler_app");
  const LogValue* stage = FindField(*stalls[0], "straggler_stage");
  ASSERT_NE(app, nullptr);
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(app->AsString(), "com.slow");
  EXPECT_EQ(stage->AsString(), "dynamic");
  const LogValue* app2 = FindField(*stalls[1], "straggler_app");
  ASSERT_NE(app2, nullptr);
  EXPECT_EQ(app2->AsString(), "com.slower");
}

TEST(TelemetryTest, IdleTicksNeverTripTheWatchdog) {
  TelemetryOptions opts = ManualOptions();
  opts.stall_ticks = 2;
  Telemetry telemetry(nullptr, opts);
  // Nothing in flight: a quiet run (or the gap before work arrives) is not a
  // stall, however long it lasts.
  for (int i = 0; i < 20; ++i) telemetry.Tick();
  EXPECT_EQ(telemetry.watchdog_fires(), 0u);
}

TEST(TelemetryTest, StageEndOnlyClearsTheMatchingStage) {
  Telemetry telemetry(nullptr, ManualOptions());
  const std::uint64_t key = TelemetryKey(0, 3);
  telemetry.OnStageStart(key, "android", "com.a", "static");
  // Another worker already moved the chain to its next stage; the straggler
  // table must keep the newer entry when the older stage's end arrives late.
  telemetry.OnStageStart(key, "android", "com.a", "dynamic");
  telemetry.OnStageEnd(key, "static");
  const std::vector<StragglerRow> rows = telemetry.Stragglers(10);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].stage, "dynamic");
}

TEST(TelemetryTest, StragglersOrderLongestFirstAndTruncateToK) {
  Telemetry telemetry(nullptr, ManualOptions());
  telemetry.OnStageStart(TelemetryKey(0, 0), "android", "com.oldest", "static");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  telemetry.OnStageStart(TelemetryKey(0, 1), "android", "com.middle", "dynamic");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  telemetry.OnStageStart(TelemetryKey(1, 0), "ios", "com.newest", "static");

  const std::vector<StragglerRow> top2 = telemetry.Stragglers(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].app_id, "com.oldest");
  EXPECT_EQ(top2[1].app_id, "com.middle");
  EXPECT_GE(top2[0].elapsed_ms, top2[1].elapsed_ms);
}

TEST(TelemetryTest, HeartbeatIsMonotoneParseableJsonlWithPhasePercentiles) {
  const std::filesystem::path path = TempPath("hb.jsonl");
  std::filesystem::remove(path);
  MetricsRegistry registry;
  registry.histogram("phase.static", MetricsRegistry::Log2DurationBoundsUs())
      .Record(500.0);

  TelemetryOptions opts = ManualOptions();
  opts.heartbeat_path = path.string();
  {
    Telemetry telemetry(&registry, opts);
    telemetry.Start();
    telemetry.AddTotal(3);
    telemetry.Tick();
    telemetry.OnItemDone(TelemetryKey(0, 0));
    telemetry.Tick();
    telemetry.OnItemDone(TelemetryKey(0, 1));
    telemetry.OnItemDone(TelemetryKey(0, 2));
    telemetry.Stop();  // takes the final tick and closes the file
  }

  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::string line;
  std::uint64_t lines = 0;
  std::uint64_t last_tick = 0;
  std::uint64_t last_done = 0;
  while (std::getline(f, line)) {
    ++lines;
    ASSERT_EQ(line.front(), '{');
    ASSERT_EQ(line.back(), '}');
    std::uint64_t tick = 0;
    std::uint64_t done = 0;
    std::uint64_t total = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "{\"tick\": %" SCNu64, &tick), 1);
    const char* done_at = std::strstr(line.c_str(), "\"done\": ");
    ASSERT_NE(done_at, nullptr);
    ASSERT_EQ(std::sscanf(done_at, "\"done\": %" SCNu64, &done), 1);
    const char* total_at = std::strstr(line.c_str(), "\"total\": ");
    ASSERT_NE(total_at, nullptr);
    ASSERT_EQ(std::sscanf(total_at, "\"total\": %" SCNu64, &total), 1);
    EXPECT_GT(tick, last_tick) << "tick must be strictly monotone";
    EXPECT_GE(done, last_done) << "done must be monotone";
    EXPECT_EQ(total, 3u);
    EXPECT_NE(line.find("\"phases\": {"), std::string::npos);
    EXPECT_NE(line.find("\"phase.static\""), std::string::npos);
    EXPECT_NE(line.find("\"p50_us\""), std::string::npos);
    EXPECT_NE(line.find("\"p99_us\""), std::string::npos);
    last_tick = tick;
    last_done = done;
  }
  EXPECT_EQ(lines, 3u);  // two manual ticks + Stop()'s final one
  EXPECT_EQ(last_done, 3u);
  std::filesystem::remove(path);
}

TEST(TelemetryTest, LiveMetricsRefreshAtomicallyInBothFormats) {
  MetricsRegistry registry;
  registry.counter("study.apps_analyzed").Add(4);
  registry.histogram("phase.static", MetricsRegistry::Log2DurationBoundsUs())
      .Record(100.0);

  // OpenMetrics (.prom): sanitized names, _sum/_count, percentile gauges,
  // terminal "# EOF", and no leftover .tmp after the rename.
  const std::filesystem::path prom = TempPath("live.prom");
  std::filesystem::remove(prom);
  TelemetryOptions prom_opts = ManualOptions();
  prom_opts.metrics_path = prom.string();
  Telemetry prom_telemetry(&registry, prom_opts);
  prom_telemetry.Tick();
  const std::string prom_body = Slurp(prom);
  ASSERT_FALSE(prom_body.empty());
  EXPECT_NE(prom_body.find("pinscope_study_apps_analyzed_total 4"),
            std::string::npos);
  EXPECT_NE(prom_body.find("pinscope_phase_static_sum"), std::string::npos);
  EXPECT_NE(prom_body.find("pinscope_phase_static_count"), std::string::npos);
  EXPECT_NE(prom_body.find("pinscope_phase_static_p50"), std::string::npos);
  EXPECT_NE(prom_body.find("pinscope_phase_static_p99"), std::string::npos);
  const std::string eof_tail = "# EOF\n";
  ASSERT_GE(prom_body.size(), eof_tail.size());
  EXPECT_EQ(prom_body.substr(prom_body.size() - eof_tail.size()), eof_tail);
  EXPECT_FALSE(std::filesystem::exists(prom.string() + ".tmp"));

  // A second tick rewrites the file in place (fresh, not appended). The
  // process RSS gauges legitimately move between ticks, so compare with
  // those lines stripped.
  const auto strip_rss = [](const std::string& body) {
    std::string out;
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("process_rss_bytes") == std::string::npos &&
          line.find("process_peak_rss_bytes") == std::string::npos) {
        out += line;
        out += '\n';
      }
    }
    return out;
  };
  prom_telemetry.Tick();
  EXPECT_EQ(strip_rss(Slurp(prom)), strip_rss(prom_body));

  // Any other suffix: the JSON snapshot format.
  const std::filesystem::path json = TempPath("live.json");
  std::filesystem::remove(json);
  TelemetryOptions json_opts = ManualOptions();
  json_opts.metrics_path = json.string();
  Telemetry json_telemetry(&registry, json_opts);
  json_telemetry.Tick();
  const std::string json_body = Slurp(json);
  ASSERT_FALSE(json_body.empty());
  EXPECT_EQ(json_body.front(), '{');
  EXPECT_NE(json_body.find("\"study.apps_analyzed\""), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(json.string() + ".tmp"));

  std::filesystem::remove(prom);
  std::filesystem::remove(json);
}

TEST(TelemetryTest, PlainProgressRendersOneLinePerTick) {
  const std::filesystem::path path = TempPath("progress.txt");
  std::FILE* stream = std::fopen(path.string().c_str(), "w+b");
  ASSERT_NE(stream, nullptr);
  TelemetryOptions opts = ManualOptions();
  opts.progress = ProgressMode::kPlain;
  opts.progress_stream = stream;
  Telemetry telemetry(nullptr, opts);
  telemetry.AddTotal(2);
  telemetry.Tick();
  telemetry.OnItemDone(TelemetryKey(0, 0));
  telemetry.OnItemDone(TelemetryKey(0, 1));
  telemetry.Tick();
  std::fclose(stream);

  const std::string out = Slurp(path);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("[pinscope] t+"), std::string::npos);
  EXPECT_NE(out.find("0/2 apps (0.0%)"), std::string::npos);
  EXPECT_NE(out.find("2/2 apps (100.0%)"), std::string::npos);
  EXPECT_NE(out.find("| rss "), std::string::npos);
  EXPECT_NE(out.find("| inflight "), std::string::npos);
  // Plain mode is pipeable: no carriage returns, no escape codes.
  EXPECT_EQ(out.find('\r'), std::string::npos);
  EXPECT_EQ(out.find('\x1b'), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TelemetryTest, TimelineJsonIsAWellFormedFrameArray) {
  Telemetry telemetry(nullptr, ManualOptions());
  EXPECT_EQ(telemetry.TimelineJson(), "[]");
  telemetry.OnItemDone(TelemetryKey(0, 0));
  telemetry.Tick();
  telemetry.Tick();
  const std::string json = telemetry.TimelineJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("{\"tick\": 1"), std::string::npos);
  EXPECT_NE(json.find("{\"tick\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rss_bytes\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
}

TEST(TelemetryTest, BackgroundSamplerTicksAndStopsCleanly) {
  // The one test that exercises the real sampler thread: a short interval,
  // a brief run, and the Start/Stop bracket. Everything else (exact tick
  // counts) belongs to manual mode.
  MetricsRegistry registry;
  TelemetryOptions opts;
  opts.interval_ms = 5;
  Telemetry telemetry(&registry, opts);
  telemetry.Start();
  telemetry.AddTotal(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  telemetry.OnItemDone(TelemetryKey(0, 0));
  telemetry.Stop();
  EXPECT_GE(telemetry.ticks(), 2u);  // several periodic ticks + the final one
  EXPECT_EQ(telemetry.done(), 1u);
  const std::vector<TelemetryFrame> frames = telemetry.Frames();
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.back().done, 1u);
  // Stop() is idempotent and the destructor's implicit Stop() is a no-op.
  telemetry.Stop();
}

TEST(ProcessTest, CurrentRssIsReadableAndBelowPeak) {
  const auto rss = ReadCurrentRssBytes();
  const auto peak = ReadPeakRssBytes();
  ASSERT_TRUE(rss.has_value());
  // VmRSS is batched per-thread in /proc, so it can momentarily read a few
  // pages above VmHWM — compare with page-batching slack, not exactly.
  constexpr std::uint64_t kRssSlack = 4u << 20;
  ASSERT_TRUE(peak.has_value());
  EXPECT_GT(*rss, 0u);
  EXPECT_GE(*peak + kRssSlack, *rss);

  MetricsRegistry registry;
  PublishRss(&registry);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.gauges.at("process.rss_bytes"), 0u);
  EXPECT_GE(snap.gauges.at("process.peak_rss_bytes") + kRssSlack,
            snap.gauges.at("process.rss_bytes"));
}

}  // namespace
}  // namespace pinscope::obs

// Autopsy unit suite over synthetic timelines: critical-path walking (chain
// and worker edges), the idle-attribution breakdown, slow-item aggregation,
// the lock-contention join, and folded-stack output.
#include "obs/autopsy.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"

namespace pinscope::obs {
namespace {

TEST(AutopsyTest, SingleWorkerCriticalPathCoversTheWholeRun) {
  Timeline timeline;
  const std::uint32_t s0 = timeline.InternStage("static");
  const std::uint32_t s1 = timeline.InternStage("dynamic");
  // One worker, back-to-back: A.static, A.dynamic, B.static.
  timeline.RecordStage(0, /*key=*/1, s0, 0, 100);
  timeline.RecordStage(0, 1, s1, 100, 250);
  timeline.RecordStage(0, 2, s0, 250, 300);

  const Autopsy autopsy = Analyze(timeline);
  EXPECT_FALSE(autopsy.sampled);
  EXPECT_EQ(autopsy.workers, 1u);
  ASSERT_EQ(autopsy.critical_path.size(), 3u);
  EXPECT_EQ(autopsy.critical_path[0].key, 1u);
  EXPECT_EQ(autopsy.critical_path[0].stage, "static");
  EXPECT_EQ(autopsy.critical_path[1].stage, "dynamic");
  EXPECT_EQ(autopsy.critical_path[2].key, 2u);
  EXPECT_DOUBLE_EQ(autopsy.critical_path_us, 300.0);
  EXPECT_DOUBLE_EQ(autopsy.wall_us, 300.0);
}

TEST(AutopsyTest, ChainEdgeBeatsWorkerEdgeWhenItEndsLater) {
  Timeline timeline;
  const std::uint32_t s0 = timeline.InternStage("static");
  const std::uint32_t s1 = timeline.InternStage("dynamic");
  // Worker 0 runs A.static then B.static; worker 1 picks up A.dynamic after
  // a gap. The last interval's binding predecessor is A.static (chain edge,
  // ends 100) — B.static on worker 1's own lane never happened, and worker
  // 1 has nothing earlier.
  timeline.RecordStage(0, 1, s0, 0, 100);
  timeline.RecordStage(0, 2, s0, 100, 110);
  timeline.RecordStage(1, 1, s1, 120, 200);

  const Autopsy autopsy = Analyze(timeline);
  ASSERT_EQ(autopsy.critical_path.size(), 2u);
  EXPECT_EQ(autopsy.critical_path[0].key, 1u);
  EXPECT_EQ(autopsy.critical_path[0].stage, "static");
  EXPECT_EQ(autopsy.critical_path[1].key, 1u);
  EXPECT_EQ(autopsy.critical_path[1].stage, "dynamic");
  EXPECT_DOUBLE_EQ(autopsy.critical_path_us, 180.0);
}

TEST(AutopsyTest, WorkerEdgeBindsWhenItEndsAfterTheChainPredecessor) {
  Timeline timeline;
  const std::uint32_t s0 = timeline.InternStage("static");
  const std::uint32_t s1 = timeline.InternStage("dynamic");
  // A.dynamic runs on worker 0 right after B.static vacates the worker
  // (ends 180) — later than its own chain predecessor A.static (ends 100),
  // so the worker edge is the binding constraint.
  timeline.RecordStage(1, 1, s0, 0, 100);
  timeline.RecordStage(0, 2, s0, 0, 180);
  timeline.RecordStage(0, 1, s1, 180, 240);

  const Autopsy autopsy = Analyze(timeline);
  ASSERT_EQ(autopsy.critical_path.size(), 2u);
  EXPECT_EQ(autopsy.critical_path[0].key, 2u);
  EXPECT_EQ(autopsy.critical_path[0].stage, "static");
  EXPECT_EQ(autopsy.critical_path[1].key, 1u);
  EXPECT_EQ(autopsy.critical_path[1].stage, "dynamic");
  EXPECT_DOUBLE_EQ(autopsy.critical_path_us, 240.0);
}

TEST(AutopsyTest, WorkerBreakdownPartitionsWallAndExcludesLockWaitFromBusy) {
  Timeline timeline;
  const std::uint32_t stage = timeline.InternStage("s");
  // RecordLockWait stamps [now - wait, now] on the real timeline clock; let
  // the clock pass the wait so the interval is exactly 100 µs, and keep the
  // synthetic stage/idle timestamps far beyond any plausible real `now` so
  // the run extrema stay deterministic.
  while (timeline.NowUs() < 200) {
  }
  timeline.RecordLockWait(0, "scan_cache", 100);  // waited inside the stage
  timeline.RecordStage(0, 1, stage, 0, 600'000);
  timeline.RecordIdle(0, IntervalKind::kQueueStarved, 600'000, 900'000);
  timeline.RecordIdle(0, IntervalKind::kTailJoin, 900'000, 1'000'000);

  const Autopsy autopsy = Analyze(timeline);
  ASSERT_EQ(autopsy.worker_breakdown.size(), 1u);
  const WorkerBreakdown& w = autopsy.worker_breakdown[0];
  EXPECT_DOUBLE_EQ(w.busy_us, 599'900.0);  // stage time minus the lock wait
  EXPECT_DOUBLE_EQ(w.lock_wait_us, 100.0);
  EXPECT_DOUBLE_EQ(w.queue_starved_us, 300'000.0);
  EXPECT_DOUBLE_EQ(w.tail_join_us, 100'000.0);
  EXPECT_EQ(w.stage_count, 1u);
  // attributed + other == wall exactly, by construction.
  EXPECT_DOUBLE_EQ(w.attributed_us() + w.other_us, autopsy.wall_us);
}

TEST(AutopsyTest, SlowestItemsAggregateStagesAndSortDescending) {
  Timeline timeline;
  const std::uint32_t s0 = timeline.InternStage("static");
  const std::uint32_t s1 = timeline.InternStage("dynamic");
  timeline.RecordStage(0, 1, s0, 0, 10);
  timeline.RecordStage(0, 1, s1, 10, 400);
  timeline.RecordStage(0, 2, s0, 400, 420);
  timeline.RecordStage(0, 2, s1, 420, 470);

  AutopsyOptions options;
  options.top_k = 1;
  const Autopsy autopsy = Analyze(timeline, nullptr, options);
  ASSERT_EQ(autopsy.slowest.size(), 1u);
  EXPECT_EQ(autopsy.slowest[0].key, 1u);
  EXPECT_DOUBLE_EQ(autopsy.slowest[0].total_us, 400.0);
  ASSERT_EQ(autopsy.slowest[0].stages.size(), 2u);
  EXPECT_EQ(autopsy.slowest[0].stages[0].first, "static");
  EXPECT_DOUBLE_EQ(autopsy.slowest[0].stages[1].second, 390.0);
}

TEST(AutopsyTest, LockProfilesJoinFromTheMetricsSnapshot) {
  Timeline timeline;
  const std::uint32_t stage = timeline.InternStage("s");
  timeline.RecordStage(0, 1, stage, 0, 10);

  MetricsRegistry metrics;
  metrics.counter("lock.scan_cache.contended").Add(3);
  metrics.histogram("lock.scan_cache.wait_us").Record(50.0);
  metrics.histogram("lock.scan_cache.wait_us").Record(150.0);
  // An uncontended lock family must not clutter the table.
  (void)metrics.counter("lock.idle_lock.contended");
  (void)metrics.histogram("lock.idle_lock.wait_us");
  const MetricsSnapshot snapshot = metrics.Snapshot();

  const Autopsy autopsy = Analyze(timeline, &snapshot);
  ASSERT_EQ(autopsy.locks.size(), 1u);
  EXPECT_EQ(autopsy.locks[0].name, "scan_cache");
  EXPECT_EQ(autopsy.locks[0].contended, 3u);
  EXPECT_DOUBLE_EQ(autopsy.locks[0].total_wait_us, 200.0);
  EXPECT_GT(autopsy.locks[0].p99_wait_us, 0.0);
}

TEST(AutopsyTest, FoldedStacksAggregateByFrameAndSort) {
  Timeline timeline;
  const std::uint32_t s0 = timeline.InternStage("static");
  const std::uint32_t s1 = timeline.InternStage("dynamic");
  timeline.RecordStage(0, 1, s0, 0, 10);
  timeline.RecordStage(1, 1, s0, 20, 25);  // same frame, second worker
  timeline.RecordStage(0, 2, s1, 10, 40);

  const ItemResolver resolver = [](std::uint64_t key) {
    return ItemLabel{"android", "app" + std::to_string(key)};
  };
  const std::string folded = WriteFoldedStacks(timeline, resolver);
  EXPECT_EQ(folded,
            "android;app1;static 15\n"
            "android;app2;dynamic 30\n");

  // Without a resolver the fallback labels keys in decimal.
  const std::string fallback = WriteFoldedStacks(timeline);
  EXPECT_NE(fallback.find("item;1;static 15\n"), std::string::npos);
}

TEST(AutopsyTest, EmptyTimelineYieldsAnEmptyAutopsy) {
  Timeline timeline;
  const Autopsy autopsy = Analyze(timeline);
  EXPECT_TRUE(autopsy.critical_path.empty());
  EXPECT_TRUE(autopsy.worker_breakdown.empty());
  EXPECT_TRUE(autopsy.slowest.empty());
  EXPECT_DOUBLE_EQ(autopsy.critical_path_us, 0.0);
  EXPECT_EQ(WriteFoldedStacks(timeline), "");
}

TEST(AutopsyTest, FallbackLabelUsesDecimalKeys) {
  const ItemLabel label = FallbackLabel(42);
  EXPECT_EQ(label.platform, "item");
  EXPECT_EQ(label.app, "42");
}

}  // namespace
}  // namespace pinscope::obs

// TrackedMutex probe contract: plain-mutex behavior with no registry,
// zero-cost uncontended path (no contended count, no wait samples), and a
// real contention event surfacing in both `lock.<name>.contended` and
// `lock.<name>.wait_us`.
#include "obs/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

namespace pinscope::obs {
namespace {

TEST(TrackedMutexTest, BehavesLikeAMutexWithoutRegistry) {
  TrackedMutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  std::lock_guard<TrackedMutex> guard(mu);  // Lockable with std adapters
}

TEST(TrackedMutexTest, UncontendedLocksRecordNothing) {
  MetricsRegistry registry;
  TrackedMutex mu(&registry, "probe");
  for (int i = 0; i < 100; ++i) {
    std::lock_guard<TrackedMutex> guard(mu);
  }
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("lock.probe.contended"), 0u);
  EXPECT_EQ(snap.histograms.at("lock.probe.wait_us").count, 0u);
}

TEST(TrackedMutexTest, ContentionSurfacesCountAndWait) {
  MetricsRegistry registry;
  TrackedMutex mu(&registry, "probe");

  // Timing-dependent by nature (contention requires the waiter to reach its
  // blocking lock() while we hold the mutex), so retry until one contention
  // event lands rather than trusting a single sleep.
  for (int attempt = 0; attempt < 50; ++attempt) {
    mu.lock();
    std::atomic<bool> started{false};
    std::thread waiter([&] {
      started.store(true);
      mu.lock();
      mu.unlock();
    });
    while (!started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    mu.unlock();
    waiter.join();
    if (registry.Snapshot().counters.at("lock.probe.contended") >= 1) break;
  }

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GE(snap.counters.at("lock.probe.contended"), 1u);
  const HistogramSnapshot& wait = snap.histograms.at("lock.probe.wait_us");
  EXPECT_GE(wait.count, 1u);
  EXPECT_GT(wait.sum, 0.0);
}

TEST(TrackedMutexTest, NullRegistryAttachIsNoOp) {
  TrackedMutex mu;
  mu.Attach(nullptr, "probe");
  mu.lock();
  mu.unlock();
}

}  // namespace
}  // namespace pinscope::obs

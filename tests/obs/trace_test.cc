// TraceSink/Span contract tests: complete-event JSON shape, RAII span
// lifetime, move semantics, and stable per-thread ids.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace pinscope::obs {
namespace {

TEST(SpanTest, RecordsOneCompleteEventWithNameCategoryAndArgs) {
  TraceSink sink;
  {
    const Span span(&sink, "study.run", "study", {{"apps", "12"}});
  }
  EXPECT_EQ(sink.EventCount(), 1u);
  const std::string json = sink.ToJson();
  EXPECT_NE(json.find("\"name\": \"study.run\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"study\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"apps\": \"12\"}"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(SpanTest, DefaultConstructedSpanRecordsNothing) {
  {
    Span span;
    span.End();
  }
  // SpanFor on a null observer is the same no-op.
  { const Span span = SpanFor(nullptr, "x", "y"); }
  SUCCEED();
}

TEST(SpanTest, EndIsIdempotentAndDestructorDoesNotDoubleRecord) {
  TraceSink sink;
  {
    Span span(&sink, "phase", "test");
    span.End();
    span.End();
  }
  EXPECT_EQ(sink.EventCount(), 1u);
}

TEST(SpanTest, MovedFromSpanRecordsNothing) {
  TraceSink sink;
  {
    Span a(&sink, "moved", "test");
    const Span b = std::move(a);
    // `a` is detached; only `b`'s destruction records.
  }
  EXPECT_EQ(sink.EventCount(), 1u);
}

TEST(SpanTest, MoveAssignEndsTheCurrentSpanFirst) {
  TraceSink sink;
  {
    Span a(&sink, "first", "test");
    Span b(&sink, "second", "test");
    a = std::move(b);  // "first" must be recorded here, "second" at scope end
    EXPECT_EQ(sink.EventCount(), 1u);
  }
  EXPECT_EQ(sink.EventCount(), 2u);
  const std::string json = sink.ToJson();
  EXPECT_NE(json.find("\"first\""), std::string::npos);
  EXPECT_NE(json.find("\"second\""), std::string::npos);
}

// Pulls one integer field ("ts" or "dur") out of the event whose name
// matches; enough JSON parsing for containment checks.
std::int64_t EventField(const std::string& json, const std::string& name,
                        const std::string& field) {
  const std::size_t event = json.find("\"name\": \"" + name + "\"");
  EXPECT_NE(event, std::string::npos) << name;
  const std::size_t pos = json.find("\"" + field + "\": ", event);
  EXPECT_NE(pos, std::string::npos) << field;
  return std::stoll(json.substr(pos + field.size() + 4));
}

TEST(SpanTest, NestedSpansHaveContainedTimestamps) {
  TraceSink sink;
  {
    const Span outer(&sink, "outer", "test");
    { const Span inner(&sink, "inner", "test"); }
  }
  ASSERT_EQ(sink.EventCount(), 2u);
  const std::string json = sink.ToJson();
  const std::int64_t outer_ts = EventField(json, "outer", "ts");
  const std::int64_t outer_dur = EventField(json, "outer", "dur");
  const std::int64_t inner_ts = EventField(json, "inner", "ts");
  const std::int64_t inner_dur = EventField(json, "inner", "dur");
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur);
}

TEST(TraceSinkTest, AssignsStableSmallThreadIds) {
  TraceSink sink;
  const std::uint32_t main_tid = sink.CurrentTid();
  EXPECT_EQ(sink.CurrentTid(), main_tid);  // stable on re-query

  std::set<std::uint32_t> tids{main_tid};
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      const Span span(&sink, "worker", "test");
      const std::uint32_t tid = sink.CurrentTid();
      std::lock_guard<std::mutex> lock(mu);
      tids.insert(tid);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(tids.size(), 5u);  // main + 4 workers, all distinct
  for (const std::uint32_t tid : tids) EXPECT_LT(tid, 5u);  // small & dense
  EXPECT_EQ(sink.EventCount(), 4u);
}

TEST(TraceSinkTest, EmptySinkSerializesToValidSkeleton) {
  TraceSink sink;
  EXPECT_EQ(sink.EventCount(), 0u);
  const std::string json = sink.ToJson();
  EXPECT_NE(json.find("\"traceEvents\": []"), std::string::npos);
}

TEST(TraceSinkTest, JsonEscapesQuotesInNamesAndArgs) {
  TraceSink sink;
  { const Span span(&sink, "na\"me", "cat", {{"k", "v\"q"}}); }
  const std::string json = sink.ToJson();
  EXPECT_NE(json.find("na\\\"me"), std::string::npos);
  EXPECT_NE(json.find("v\\\"q"), std::string::npos);
}

}  // namespace
}  // namespace pinscope::obs

// Timeline unit suite: exact per-worker accumulators, the bounded interval
// reservoir, run bounds, and the ambient TrackedMutex lock-wait hook.
#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/mutex.h"

namespace pinscope::obs {
namespace {

TEST(TimelineTest, IntervalKindNamesAreStable) {
  EXPECT_EQ(IntervalKindName(IntervalKind::kStage), "stage");
  EXPECT_EQ(IntervalKindName(IntervalKind::kQueueStarved), "queue_starved");
  EXPECT_EQ(IntervalKindName(IntervalKind::kBackpressure), "backpressure");
  EXPECT_EQ(IntervalKindName(IntervalKind::kLockWait), "lock_wait");
  EXPECT_EQ(IntervalKindName(IntervalKind::kTailJoin), "tail_join");
}

TEST(TimelineTest, TotalsAccumulateExactlyPerKindAndWorker) {
  Timeline timeline;
  const std::uint32_t stage = timeline.InternStage("static");
  timeline.RecordStage(/*worker=*/0, /*key=*/7, stage, 10, 110);
  timeline.RecordStage(0, 8, stage, 110, 160);
  timeline.RecordIdle(0, IntervalKind::kQueueStarved, 160, 200);
  timeline.RecordIdle(1, IntervalKind::kBackpressure, 0, 25);
  timeline.RecordIdle(1, IntervalKind::kTailJoin, 25, 30);
  // RecordLockWait stamps [now - wait, now] against the real timeline
  // clock; let it advance past the wait so nothing clamps at zero.
  while (timeline.NowUs() < 100) {
  }
  timeline.RecordLockWait(1, "scan_cache", 12);

  const TimelineWorkerTotals w0 = timeline.TotalsFor(0);
  EXPECT_DOUBLE_EQ(w0.busy_us, 150.0);
  EXPECT_DOUBLE_EQ(w0.queue_starved_us, 40.0);
  EXPECT_DOUBLE_EQ(w0.lock_wait_us, 0.0);
  EXPECT_EQ(w0.stage_count, 2u);
  EXPECT_EQ(w0.intervals_seen, 3u);
  EXPECT_EQ(w0.first_us, 10);
  EXPECT_EQ(w0.last_us, 200);

  const TimelineWorkerTotals w1 = timeline.TotalsFor(1);
  EXPECT_DOUBLE_EQ(w1.busy_us, 0.0);
  EXPECT_DOUBLE_EQ(w1.backpressure_us, 25.0);
  EXPECT_DOUBLE_EQ(w1.tail_join_us, 5.0);
  EXPECT_DOUBLE_EQ(w1.lock_wait_us, 12.0);
  EXPECT_EQ(w1.stage_count, 0u);

  EXPECT_EQ(timeline.WorkerCount(), 2u);
  EXPECT_EQ(timeline.IntervalsSeen(), 6u);
}

TEST(TimelineTest, SamplesAreSortedAndCarryInternedLabels) {
  Timeline timeline;
  const std::uint32_t s0 = timeline.InternStage("static");
  const std::uint32_t s1 = timeline.InternStage("dynamic");
  EXPECT_EQ(timeline.InternStage("static"), s0);  // idempotent
  timeline.RecordStage(0, 2, s1, 50, 90);
  timeline.RecordStage(0, 1, s0, 0, 40);

  const std::vector<TimelineInterval> samples = timeline.SamplesFor(0);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].start_us, 0);
  EXPECT_EQ(samples[1].start_us, 50);
  EXPECT_EQ(timeline.StageName(samples[0].label), "static");
  EXPECT_EQ(timeline.StageName(samples[1].label), "dynamic");
  EXPECT_EQ(samples[0].key, 1u);
  EXPECT_EQ(samples[1].kind, IntervalKind::kStage);
}

TEST(TimelineTest, ReservoirIsBoundedWhileTotalsStayExact) {
  TimelineOptions options;
  options.per_worker_cap = 64;
  Timeline timeline(options);
  const std::uint32_t stage = timeline.InternStage("static");
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    timeline.RecordStage(0, static_cast<std::uint64_t>(i), stage, i * 10,
                         i * 10 + 5);
  }
  EXPECT_EQ(timeline.SamplesFor(0).size(), 64u);
  EXPECT_EQ(timeline.SampleCount(), 64u);
  EXPECT_EQ(timeline.IntervalsSeen(), static_cast<std::uint64_t>(n));
  const TimelineWorkerTotals totals = timeline.TotalsFor(0);
  EXPECT_DOUBLE_EQ(totals.busy_us, 5.0 * n);  // exact despite sampling
  EXPECT_EQ(totals.stage_count, static_cast<std::uint64_t>(n));

  // Capacity is a function of (lanes, cap) only: a timeline that saw 10x
  // the intervals on the same lane reports the identical bound.
  Timeline bigger(options);
  const std::uint32_t stage2 = bigger.InternStage("static");
  for (int i = 0; i < 10 * n; ++i) {
    bigger.RecordStage(0, static_cast<std::uint64_t>(i), stage2, i, i + 1);
  }
  EXPECT_EQ(bigger.ReservoirCapacityBytes(), timeline.ReservoirCapacityBytes());
}

TEST(TimelineTest, RunBoundsFallBackToIntervalExtrema) {
  Timeline timeline;
  const std::uint32_t stage = timeline.InternStage("s");
  timeline.RecordStage(0, 1, stage, 30, 70);
  timeline.RecordStage(1, 2, stage, 10, 50);
  EXPECT_EQ(timeline.RunStartUs(), 10);
  EXPECT_EQ(timeline.RunEndUs(), 70);
}

TEST(TimelineTest, MarkedRunBoundsWinOverExtrema) {
  Timeline timeline;
  timeline.MarkRunStart();
  const std::uint32_t stage = timeline.InternStage("s");
  // An interval far in the synthetic future: the marked (real-clock) bounds
  // must win over the recorded extrema, not be dragged out to 2e6 µs.
  timeline.RecordStage(0, 1, stage, 1'000'000, 2'000'000);
  timeline.MarkRunEnd();
  EXPECT_LE(timeline.RunStartUs(), timeline.RunEndUs());
  EXPECT_LT(timeline.RunEndUs(), 1'000'000);
}

TEST(TimelineTest, ContendedTrackedMutexLandsInTheAmbientWorkerLane) {
  Timeline timeline;
  MetricsRegistry metrics;
  TrackedMutex mu(&metrics, "test_lock");

  mu.lock();
  std::atomic<bool> thread_blocked{false};
  std::thread contender([&] {
    TimelineWorkerScope ambient(&timeline, /*worker=*/3);
    thread_blocked.store(true);
    mu.lock();  // contended: waits until the main thread unlocks
    mu.unlock();
  });
  while (!thread_blocked.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mu.unlock();
  contender.join();

  const TimelineWorkerTotals totals = timeline.TotalsFor(3);
  EXPECT_GT(totals.lock_wait_us, 0.0);
  const std::vector<TimelineInterval> samples = timeline.SamplesFor(3);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, IntervalKind::kLockWait);
  EXPECT_EQ(timeline.LockName(samples[0].label), "test_lock");
}

TEST(TimelineTest, AmbientPauseSuppressesLockWaitAttribution) {
  Timeline timeline;
  TrackedMutex mu;
  mu.Attach(nullptr, "paused_lock");

  mu.lock();
  std::atomic<bool> thread_blocked{false};
  std::thread contender([&] {
    TimelineWorkerScope ambient(&timeline, 0);
    TimelineAmbientPause pause;  // e.g. inside a timed queue wait
    thread_blocked.store(true);
    mu.lock();
    mu.unlock();
  });
  while (!thread_blocked.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  mu.unlock();
  contender.join();

  EXPECT_DOUBLE_EQ(timeline.TotalsFor(0).lock_wait_us, 0.0);
  EXPECT_EQ(timeline.IntervalsSeen(), 0u);
}

TEST(TimelineTest, NoAmbientScopeMeansContentionRecordsNothing) {
  Timeline timeline;
  TrackedMutex mu;
  mu.Attach(nullptr, "unscoped");
  mu.lock();
  std::thread contender([&] {
    mu.lock();  // no TimelineWorkerScope on this thread
    mu.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  mu.unlock();
  contender.join();
  EXPECT_EQ(timeline.IntervalsSeen(), 0u);
}

TEST(TimelineTest, ParallelRecordersStayExactAcrossLanes) {
  Timeline timeline;
  const std::uint32_t stage = timeline.InternStage("s");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        timeline.RecordStage(static_cast<std::uint32_t>(t),
                             static_cast<std::uint64_t>(i), stage, i, i + 2);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(timeline.IntervalsSeen(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(timeline.TotalsFor(static_cast<std::size_t>(t)).busy_us,
                     2.0 * kPerThread);
  }
}

}  // namespace
}  // namespace pinscope::obs

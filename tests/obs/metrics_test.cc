// MetricsRegistry contract tests: exact counter totals under parallel
// writers, fixed-bucket histogram boundary behaviour, gauge idempotence,
// null-handle no-ops, and deterministic snapshot serialization.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "util/parallel.h"

namespace pinscope::obs {
namespace {

TEST(CounterTest, SumsExactlyUnderParallelWriters) {
  MetricsRegistry registry;
  // Handles are created once and shared — the hot path the pipeline uses.
  Counter counter = registry.counter("test.adds");
  constexpr std::size_t kItems = 10'000;

  util::ParallelOptions par;
  par.threads = 8;
  util::ParallelFor(
      kItems, [&](std::size_t i) { counter.Add(i % 3 == 0 ? 2 : 1); }, par);

  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kItems; ++i) expected += i % 3 == 0 ? 2 : 1;
  EXPECT_EQ(registry.Snapshot().counters.at("test.adds"), expected);
}

TEST(CounterTest, HandlesForTheSameNameShareOneCell) {
  MetricsRegistry registry;
  registry.counter("shared").Increment();
  registry.counter("shared").Add(4);
  EXPECT_EQ(registry.Snapshot().counters.at("shared"), 5u);
}

TEST(CounterTest, NullHandleIsANoOp) {
  Counter null_counter;           // default-constructed = detached
  null_counter.Increment();       // must not crash
  null_counter.Add(100);
  Counter from_null = CounterOrNull(nullptr, "anything");
  from_null.Increment();
  Histogram null_histogram = HistogramOrNull(nullptr, "anything");
  null_histogram.Record(1.0);
  ScopedTimer null_timer;  // records nowhere on destruction
  SUCCEED();
}

TEST(GaugeTest, LastWriteWinsAndRepublishingIsIdempotent) {
  MetricsRegistry registry;
  registry.gauge("cache.x.entries").Set(10);
  registry.gauge("cache.x.entries").Set(7);
  EXPECT_EQ(registry.Snapshot().gauges.at("cache.x.entries"), 7u);
  // Re-publishing the same snapshot value (a second Run()) must not grow it.
  registry.gauge("cache.x.entries").Set(7);
  EXPECT_EQ(registry.Snapshot().gauges.at("cache.x.entries"), 7u);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("test.h", {10.0, 20.0, 30.0});

  h.Record(5.0);    // ≤ 10 → bucket 0
  h.Record(10.0);   // boundary value lands in its own bucket (≤ 10)
  h.Record(10.5);   // bucket 1 (≤ 20)
  h.Record(20.0);   // bucket 1
  h.Record(29.999); // bucket 2 (≤ 30)
  h.Record(31.0);   // overflow bucket
  h.Record(1e9);    // overflow bucket

  const HistogramSnapshot snap = registry.Snapshot().histograms.at("test.h");
  ASSERT_EQ(snap.bounds, (std::vector<double>{10.0, 20.0, 30.0}));
  ASSERT_EQ(snap.buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 2u);
  EXPECT_EQ(snap.count, 7u);
  EXPECT_DOUBLE_EQ(snap.min, 5.0);
  EXPECT_DOUBLE_EQ(snap.max, 1e9);
}

TEST(HistogramTest, SumMinMaxMeanTrackRecordedValues) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("test.stats", {100.0});
  h.Record(10.0);
  h.Record(30.0);
  h.Record(20.0);
  const HistogramSnapshot snap = registry.Snapshot().histograms.at("test.stats");
  EXPECT_DOUBLE_EQ(snap.sum, 60.0);
  EXPECT_DOUBLE_EQ(snap.min, 10.0);
  EXPECT_DOUBLE_EQ(snap.max, 30.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 20.0);
}

TEST(HistogramTest, EmptyHistogramSnapshotsAsZeros) {
  MetricsRegistry registry;
  (void)registry.histogram("test.empty");
  const HistogramSnapshot snap = registry.Snapshot().histograms.at("test.empty");
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
  // Default bounds: the µs duration ladder plus one overflow bucket.
  EXPECT_EQ(snap.buckets.size(),
            MetricsRegistry::DefaultDurationBoundsUs().size() + 1);
}

TEST(HistogramTest, QuantileOfAnEmptyHistogramIsZero) {
  MetricsRegistry registry;
  (void)registry.histogram("test.q_empty", {10.0, 100.0});
  const HistogramSnapshot snap =
      registry.Snapshot().histograms.at("test.q_empty");
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 0.0);
}

TEST(HistogramTest, QuantileOfASingleSampleClampsToThatValue) {
  MetricsRegistry registry;
  registry.histogram("test.q_one", {10.0, 100.0}).Record(42.0);
  const HistogramSnapshot snap =
      registry.Snapshot().histograms.at("test.q_one");
  // min == max == 42: interpolation inside the (10, 100] bucket would drift,
  // but the [min, max] clamp pins every quantile to the one observation.
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    SCOPED_TRACE(q);
    EXPECT_DOUBLE_EQ(snap.Quantile(q), 42.0);
  }
}

TEST(HistogramTest, QuantileWithEverySampleInOverflowStaysInRange) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("test.q_over", {1.0, 2.0});
  h.Record(1000.0);
  h.Record(3000.0);
  h.Record(2000.0);
  const HistogramSnapshot snap =
      registry.Snapshot().histograms.at("test.q_over");
  // All mass beyond the last bound: the overflow bucket's upper edge is the
  // recorded max, and the estimate never leaves [min, max].
  for (const double q : {0.0, 0.5, 0.9, 1.0}) {
    SCOPED_TRACE(q);
    const double estimate = snap.Quantile(q);
    EXPECT_GE(estimate, 1000.0);
    EXPECT_LE(estimate, 3000.0);
  }
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 3000.0);
}

TEST(HistogramTest, CountsExactlyUnderParallelRecorders) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("test.par", {0.5});
  constexpr std::size_t kItems = 8'000;
  util::ParallelOptions par;
  par.threads = 8;
  util::ParallelFor(
      kItems, [&](std::size_t i) { h.Record(i % 2 == 0 ? 0.0 : 1.0); }, par);
  const HistogramSnapshot snap = registry.Snapshot().histograms.at("test.par");
  EXPECT_EQ(snap.count, kItems);
  EXPECT_EQ(snap.buckets[0], kItems / 2);
  EXPECT_EQ(snap.buckets[1], kItems / 2);
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kItems) / 2);
}

TEST(ScopedTimerTest, RecordsOneSampleIntoItsHistogram) {
  MetricsRegistry registry;
  {
    ScopedTimer timer(registry.histogram("phase.x"));
  }
  const HistogramSnapshot snap = registry.Snapshot().histograms.at("phase.x");
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 0.0);
}

TEST(ScopedTimerTest, StopIsIdempotent) {
  MetricsRegistry registry;
  ScopedTimer timer(registry.histogram("phase.y"));
  timer.Stop();
  timer.Stop();  // second stop (and the destructor) must not record again
  EXPECT_EQ(registry.Snapshot().histograms.at("phase.y").count, 1u);
}

TEST(SnapshotTest, MapsAreNameSortedAndJsonIsDeterministic) {
  MetricsRegistry a;
  a.counter("zeta").Add(1);
  a.counter("alpha").Add(2);
  a.gauge("mid").Set(3);
  a.histogram("h", {1.0}).Record(0.5);

  // Same totals registered in a different order must serialize identically.
  MetricsRegistry b;
  b.histogram("h", {1.0}).Record(0.5);
  b.gauge("mid").Set(3);
  b.counter("alpha").Add(2);
  b.counter("zeta").Add(1);

  EXPECT_EQ(WriteMetricsJson(a.Snapshot()), WriteMetricsJson(b.Snapshot()));

  const MetricsSnapshot snap = a.Snapshot();
  std::vector<std::string> names;
  for (const auto& [name, _] : snap.counters) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(SnapshotTest, MetricsJsonContainsAllThreeSections) {
  MetricsRegistry registry;
  registry.counter("c").Add(7);
  registry.gauge("g").Set(9);
  registry.histogram("h", {10.0}).Record(3.0);
  const std::string json = WriteMetricsJson(registry.Snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"g\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
}

TEST(SnapshotTest, PhaseBreakdownSelectsByPrefixAndReportsMillis) {
  MetricsRegistry registry;
  registry.histogram("phase.scan", {1e9}).Record(2'000.0);   // 2 ms in µs
  registry.histogram("phase.scan", {1e9}).Record(4'000.0);
  registry.histogram("other.h", {1e9}).Record(1.0);
  const std::string json = WritePhaseBreakdownJson(registry.Snapshot());
  EXPECT_NE(json.find("\"phase.scan\""), std::string::npos);
  EXPECT_EQ(json.find("other.h"), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\": 6.000"), std::string::npos);
  EXPECT_NE(json.find("\"mean_ms\": 3.000"), std::string::npos);
}

TEST(SummaryTest, RendersCacheFamiliesPhasesAndCounters) {
  MetricsRegistry registry;
  registry.gauge("cache.scan.lookups").Set(100);
  registry.gauge("cache.scan.hits").Set(25);
  registry.gauge("cache.scan.entries").Set(75);
  registry.histogram("phase.static", {1e9}).Record(1'000.0);
  registry.counter("study.apps_analyzed").Add(12);
  const std::string summary = RenderSummary(registry.Snapshot());
  EXPECT_NE(summary.find("caches:"), std::string::npos);
  EXPECT_NE(summary.find("scan"), std::string::npos);
  EXPECT_NE(summary.find("25.0%"), std::string::npos);
  EXPECT_NE(summary.find("phases (wall time):"), std::string::npos);
  EXPECT_NE(summary.find("counters:"), std::string::npos);
  EXPECT_NE(summary.find("study.apps_analyzed"), std::string::npos);
}

TEST(SnapshotTest, OpenMetricsExportFollowsExpositionFormat) {
  MetricsRegistry registry;
  registry.counter("tls.handshakes").Add(7);
  registry.gauge("cache.scan.hits").Set(9);
  registry.histogram("phase.static", {10.0, 100.0}).Record(5.0);
  registry.histogram("phase.static", {10.0, 100.0}).Record(50.0);
  const std::string text = WriteMetricsOpenMetrics(registry.Snapshot());

  // Counter: sanitized name, _total suffix.
  EXPECT_NE(text.find("# TYPE pinscope_tls_handshakes counter\n"
                      "pinscope_tls_handshakes_total 7\n"),
            std::string::npos);
  // Gauge: sanitized name, bare value.
  EXPECT_NE(text.find("# TYPE pinscope_cache_scan_hits gauge\n"
                      "pinscope_cache_scan_hits 9\n"),
            std::string::npos);
  // Histogram: cumulative buckets plus the implicit +Inf, then sum/count.
  EXPECT_NE(text.find("# TYPE pinscope_phase_static histogram"),
            std::string::npos);
  EXPECT_NE(text.find("pinscope_phase_static_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("pinscope_phase_static_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("pinscope_phase_static_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("pinscope_phase_static_sum 55\n"), std::string::npos);
  EXPECT_NE(text.find("pinscope_phase_static_count 2\n"), std::string::npos);
  // The document terminator is last.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

}  // namespace
}  // namespace pinscope::obs

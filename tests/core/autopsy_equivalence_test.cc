// Autopsy acceptance battery (DESIGN.md §17). Four contracts:
//
//  1. Attaching a bounded interval Timeline — the feed behind `pinscope
//     autopsy` — changes no exported byte and no journal byte, for seeds
//     {7, 23} × threads {1, 4, hardware}, on both the materialized and the
//     streaming study paths.
//  2. Single worker, the recorded critical path explains the run: the
//     segment durations sum to within 10% of the timeline's wall-clock.
//  3. Multiple workers, the busy+idle buckets partition each worker's
//     wall-clock exactly, and — on hosts with a core per worker — the
//     unattributed residual is under 5% (loop overhead and thread ramp-up,
//     nothing structural; an oversubscribed host hides descheduled time
//     from any userspace clock, so the strict bound is hardware-gated).
//  4. Timeline memory is O(workers · cap): on a stream far larger than the
//     reservoir the sample stays capped while the exact accumulators keep
//     counting, and the capacity bound is byte-identical for a 2× stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/corpus_source.h"
#include "core/export.h"
#include "core/stream_export.h"
#include "core/stream_study.h"
#include "core/study.h"
#include "core/synthetic_corpus.h"
#include "obs/autopsy.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "store/generator.h"
#include "testing/fixtures.h"

namespace pinscope::core {
namespace {

/// Everything a run externalizes: exports, rendered verdicts, and the
/// decision journal — the byte surfaces the timeline must never touch.
struct RunBytes {
  std::string json;
  std::string csv;
  std::string verdicts;
  std::string journal;
};

std::string RenderVerdicts(const std::vector<report::AppVerdict>& verdicts) {
  std::string out;
  for (const report::AppVerdict& v : verdicts) {
    out += v.platform + "|" + v.app_id + "|" +
           (v.pins_at_runtime ? "1" : "0") +
           (v.potential_pinning ? "1" : "0") + (v.config_pinning ? "1" : "0");
    for (const std::string& host : v.pinned_hosts) out += "|" + host;
    out += "\n";
  }
  return out;
}

void ExpectSameBytes(const RunBytes& a, const RunBytes& b) {
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.journal, b.journal);
}

RunBytes RunMaterialized(const store::Ecosystem& eco, int threads,
                         obs::Timeline* timeline) {
  obs::Observer observer;
  obs::EventLog journal(obs::Severity::kInfo);
  observer.set_log(&journal);
  StudyOptions opts;
  opts.threads = threads;
  opts.observer = &observer;
  opts.timeline = timeline;
  Study study(eco, opts);
  study.Run();
  return {ExportStudyJson(study), ExportStudyCsv(study),
          RenderVerdicts(CollectAppVerdicts(study)), journal.ToJsonl()};
}

RunBytes RunStreamed(const store::Ecosystem& eco, int threads,
                     obs::Timeline* timeline) {
  obs::Observer observer;
  obs::EventLog journal(obs::Severity::kInfo);
  observer.set_log(&journal);
  const EcosystemCorpusSource source(eco);
  StudyOptions opts;
  opts.threads = threads;
  opts.observer = &observer;
  opts.timeline = timeline;
  StreamExporter exporter;
  (void)RunStreamingStudy(source, opts, exporter);
  return {exporter.FinishJson(), exporter.FinishCsv(),
          RenderVerdicts(exporter.FinishVerdicts()), journal.ToJsonl()};
}

/// A corpus heavy enough that stage bodies dominate scheduler overhead:
/// unique payloads with embedded PEM blocks make every scan pay a real
/// parse, so the accounting assertions are not at the mercy of micro-run
/// noise.
SyntheticCorpusConfig HeavyConfig(std::size_t apps_per_platform) {
  SyntheticCorpusConfig config;
  config.seed = 7;
  config.apps_per_platform = apps_per_platform;
  // 256 KiB unique payloads: each static scan costs hundreds of µs, so the
  // per-task scheduling overhead (~µs) is noise against stage time and the
  // accounting bounds below measure structure, not constant factors.
  config.payload_bytes = 262144;
  config.unique_payload = true;
  config.pem_certs_in_payload = 3;
  return config;
}

obs::Timeline* RunHeavyStream(const SyntheticCorpusConfig& config, int threads,
                              obs::Timeline& timeline) {
  const SyntheticCorpusSource source(config);
  obs::Observer observer;
  StudyOptions opts;
  opts.threads = threads;
  opts.observer = &observer;
  opts.timeline = &timeline;
  StreamExporter exporter;
  (void)RunStreamingStudy(source, opts, exporter);
  return &timeline;
}

class AutopsyEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AutopsyEquivalenceTest, MaterializedExportsIdenticalTimelineOnOrOff) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  const RunBytes reference =
      RunMaterialized(eco, /*threads=*/1, /*timeline=*/nullptr);
  ASSERT_FALSE(reference.json.empty());
  ASSERT_FALSE(reference.journal.empty());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 4, hw > 0 ? hw : 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    obs::Timeline timeline;
    const RunBytes live = RunMaterialized(eco, threads, &timeline);
    ExpectSameBytes(reference, live);
    EXPECT_GT(timeline.IntervalsSeen(), 0u);  // it really rode along
  }
}

TEST_P(AutopsyEquivalenceTest, StreamedExportsIdenticalTimelineOnOrOff) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  const RunBytes reference =
      RunStreamed(eco, /*threads=*/1, /*timeline=*/nullptr);
  ASSERT_FALSE(reference.json.empty());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 4, hw > 0 ? hw : 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    obs::Timeline timeline;
    const RunBytes live = RunStreamed(eco, threads, &timeline);
    ExpectSameBytes(reference, live);
    EXPECT_GT(timeline.IntervalsSeen(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutopsyEquivalenceTest,
                         ::testing::Values(7u, 23u),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(AutopsyAccountingTest, SingleWorkerCriticalPathCoversTheWall) {
  obs::Timeline timeline;
  RunHeavyStream(HeavyConfig(48), /*threads=*/1, timeline);

  const obs::Autopsy autopsy = obs::Analyze(timeline);
  ASSERT_FALSE(autopsy.critical_path.empty());
  ASSERT_GT(autopsy.wall_us, 0.0);
  // Serial run: every stage is on the path (worker edges chain them all),
  // so the segment sum explains the wall to within scheduler overhead.
  EXPECT_GE(autopsy.critical_path_us, 0.90 * autopsy.wall_us);
  EXPECT_LE(autopsy.critical_path_us, 1.001 * autopsy.wall_us);
  // The path is contiguous in time: segments never overlap.
  for (std::size_t i = 1; i < autopsy.critical_path.size(); ++i) {
    EXPECT_GE(autopsy.critical_path[i].start_us,
              autopsy.critical_path[i - 1].start_us);
  }
}

TEST(AutopsyAccountingTest, MultiWorkerBucketsAccountForEachWorkersWall) {
  constexpr int kThreads = 4;
  obs::Timeline timeline;
  RunHeavyStream(HeavyConfig(96), kThreads, timeline);

  const obs::Autopsy autopsy = obs::Analyze(timeline);
  ASSERT_GT(autopsy.wall_us, 0.0);
  ASSERT_GE(autopsy.worker_breakdown.size(), 2u);
  double total_busy = 0;
  for (const obs::WorkerBreakdown& w : autopsy.worker_breakdown) {
    SCOPED_TRACE("worker=" + std::to_string(w.worker));
    // The buckets partition the wall exactly by construction...
    EXPECT_DOUBLE_EQ(w.attributed_us() + w.other_us, autopsy.wall_us);
    EXPECT_GE(w.other_us, 0.0);
    EXPECT_GT(w.attributed_us(), 0.0);
    total_busy += w.busy_us;
    // ...and on a host with a core per worker the unattributed residual
    // (loop overhead, thread ramp-up) is small: busy + idle buckets explain
    // ≥95% of the run duration. An oversubscribed host cannot satisfy this —
    // runnable-but-descheduled time is invisible to a userspace timeline —
    // so the strict bound only applies when the hardware can actually run
    // every worker. The 1.5 ms floor absorbs sub-ms jitter on micro-runs.
    if (std::thread::hardware_concurrency() >= kThreads) {
      EXPECT_LE(w.other_us, std::max(0.05 * autopsy.wall_us, 1500.0));
    }
  }
  // Regardless of host shape, the exact busy accumulators are consistent
  // with the wall: aggregate stage time can never exceed workers × wall.
  EXPECT_LE(total_busy,
            static_cast<double>(autopsy.worker_breakdown.size()) *
                autopsy.wall_us);
  EXPECT_GT(total_busy, 0.0);
}

TEST(AutopsyBoundedMemoryTest, ReservoirStaysBoundedWhileTotalsKeepCounting) {
  obs::TimelineOptions small_cap;
  small_cap.per_worker_cap = 64;

  obs::Timeline timeline(small_cap);
  RunHeavyStream(HeavyConfig(128), /*threads=*/2, timeline);  // 256 chains

  EXPECT_GT(timeline.IntervalsSeen(),
            static_cast<std::uint64_t>(timeline.SampleCount()));
  EXPECT_LE(timeline.SampleCount(), timeline.WorkerCount() * 64);
  double busy = 0;
  for (std::size_t w = 0; w < timeline.WorkerCount(); ++w) {
    busy += timeline.TotalsFor(w).busy_us;
  }
  EXPECT_GT(busy, 0.0);  // exact accumulators survived the sampling

  // Constant memory: a 2× stream reports the identical capacity bound.
  obs::Timeline bigger(small_cap);
  RunHeavyStream(HeavyConfig(256), /*threads=*/2, bigger);
  EXPECT_EQ(bigger.ReservoirCapacityBytes(), timeline.ReservoirCapacityBytes());
  EXPECT_GT(bigger.IntervalsSeen(), timeline.IntervalsSeen());

  // The sampled analysis still yields a sane autopsy and flags itself.
  const obs::Autopsy autopsy = obs::Analyze(bigger);
  EXPECT_TRUE(autopsy.sampled);
  EXPECT_GT(autopsy.wall_us, 0.0);
}

}  // namespace
}  // namespace pinscope::core

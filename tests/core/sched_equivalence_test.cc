// Scheduler-equivalence suite (DESIGN.md §13): the pipelined scheduler is a
// pure execution-order change. For every cell of the grid
//   seeds {7, 23} × threads {1, 4, hardware_concurrency} × caches {on, off}
// the pipeline scheduler must reproduce the phase-barrier scheduler's
//   (a) JSON and CSV dataset exports,
//   (b) decision-journal JSONL (full kDebug fidelity), and
//   (c) run-report Markdown + JSON (built from verdicts + journal — the
//       wall-clock metrics section describes the run, not the results, so
//       it is excluded by construction),
// byte for byte. Queue depth is also proven immaterial to results, and the
// sched.* metrics are checked to be real (tasks counted, peak depth bounded
// by the configured capacity) without ever touching an exported byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/export.h"
#include "core/study.h"
#include "obs/obs.h"
#include "report/run_report.h"
#include "testing/fixtures.h"

namespace pinscope::core {
namespace {

/// Everything a study run externalizes, captured as bytes.
struct RunOutput {
  std::string json;
  std::string csv;
  std::string journal;
  std::string report_md;
  std::string report_json;
};

struct RunConfig {
  SchedulerKind scheduler = SchedulerKind::kPipeline;
  int threads = 1;
  bool caches = true;
  std::size_t queue_depth = 0;
};

RunOutput RunStudy(const store::Ecosystem& eco, const RunConfig& config,
                   obs::Observer* external_observer = nullptr) {
  obs::Observer local_observer;
  obs::Observer& observer =
      external_observer != nullptr ? *external_observer : local_observer;
  obs::EventLog log(obs::Severity::kDebug);
  observer.set_log(&log);

  StudyOptions opts;
  opts.scheduler = config.scheduler;
  opts.threads = config.threads;
  opts.queue_depth = config.queue_depth;
  opts.dynamic.parallel_phases = config.threads != 1;
  opts.scan_cache = config.caches;
  opts.sim_cache = config.caches;
  opts.observer = &observer;
  Study study(eco, opts);
  study.Run();

  RunOutput out;
  out.json = ExportStudyJson(study);
  out.csv = ExportStudyCsv(study);
  out.journal = log.ToJsonl();

  // Report from the deterministic sources only: verdicts + journal events.
  report::RunReportInput input;
  input.verdicts = CollectAppVerdicts(study);
  const std::vector<obs::LogEvent> events = log.SortedEvents();
  input.events = &events;
  out.report_md = report::WriteRunReportMarkdown(input);
  out.report_json = report::WriteRunReportJson(input);

  observer.set_log(nullptr);
  return out;
}

void ExpectSameBytes(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.report_md, b.report_md);
  EXPECT_EQ(a.report_json, b.report_json);
}

class SchedEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedEquivalenceTest, PipelineMatchesPhasesAcrossTheFullGrid) {
  const store::Ecosystem& eco =
      pinscope::testing::MakeStudyCorpus(GetParam());

  for (const bool caches : {true, false}) {
    // The serial phase-barrier run is the reference for this cache setting.
    const RunOutput reference = RunStudy(
        eco, {.scheduler = SchedulerKind::kPhases, .threads = 1,
              .caches = caches});
    ASSERT_FALSE(reference.json.empty());
    ASSERT_FALSE(reference.journal.empty());

    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    for (const int threads : {1, 4, hw > 0 ? hw : 2}) {
      SCOPED_TRACE("caches=" + std::to_string(caches) +
                   " threads=" + std::to_string(threads));
      ExpectSameBytes(reference,
                      RunStudy(eco, {.scheduler = SchedulerKind::kPhases,
                                     .threads = threads, .caches = caches}));
      ExpectSameBytes(reference,
                      RunStudy(eco, {.scheduler = SchedulerKind::kPipeline,
                                     .threads = threads, .caches = caches}));
    }
  }
}

TEST_P(SchedEquivalenceTest, QueueDepthNeverChangesAByte) {
  const store::Ecosystem& eco =
      pinscope::testing::MakeStudyCorpus(GetParam());
  const RunOutput reference = RunStudy(
      eco, {.scheduler = SchedulerKind::kPipeline, .threads = 4});
  for (const std::size_t depth : {std::size_t{1}, std::size_t{2},
                                  std::size_t{64}}) {
    SCOPED_TRACE("queue_depth=" + std::to_string(depth));
    ExpectSameBytes(reference,
                    RunStudy(eco, {.scheduler = SchedulerKind::kPipeline,
                                   .threads = 4, .queue_depth = depth}));
  }
}

TEST_P(SchedEquivalenceTest, SchedMetricsAreRealAndPurelyObservational) {
  const store::Ecosystem& eco =
      pinscope::testing::MakeStudyCorpus(GetParam());
  obs::Observer observer;
  const RunOutput out = RunStudy(
      eco,
      {.scheduler = SchedulerKind::kPipeline, .threads = 4, .queue_depth = 2},
      &observer);
  ASSERT_FALSE(out.json.empty());

  const obs::MetricsSnapshot snap = observer.metrics().Snapshot();
  // Three stages per app: the task counter must cover the whole corpus.
  ASSERT_TRUE(snap.counters.count("sched.tasks"));
  EXPECT_EQ(snap.counters.at("sched.tasks"),
            3 * snap.counters.at("study.apps_analyzed"));
  EXPECT_EQ(snap.counters.at("sched.failures"), 0u);  // clean run
  // The configured capacity is a hard bound on the observed peak.
  ASSERT_TRUE(snap.gauges.count("sched.queue_peak_depth"));
  EXPECT_LE(snap.gauges.at("sched.queue_peak_depth"), 2u);
}

TEST_P(SchedEquivalenceTest, StreamedResultsMatchExportedVerdictSet) {
  // on_result streams in completion order under the pipeline scheduler;
  // collected and re-sorted it must be exactly the exported verdict set.
  const store::Ecosystem& eco =
      pinscope::testing::MakeStudyCorpus(GetParam());
  std::mutex mu;
  std::vector<std::string> streamed;
  StudyOptions opts;
  opts.scheduler = SchedulerKind::kPipeline;
  opts.threads = 4;
  opts.dynamic.parallel_phases = true;
  opts.on_result = [&](const AppResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    streamed.push_back(r.app->meta.app_id);
  };
  Study study(eco, opts);
  study.Run();

  std::vector<std::string> exported;
  for (const report::AppVerdict& v : CollectAppVerdicts(study)) {
    exported.push_back(v.app_id);
  }
  std::sort(streamed.begin(), streamed.end());
  std::sort(exported.begin(), exported.end());
  EXPECT_EQ(streamed, exported);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedEquivalenceTest,
                         ::testing::Values(7u, 23u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pinscope::core

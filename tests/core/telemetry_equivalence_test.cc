// Telemetry acceptance battery (DESIGN.md §16). Four contracts:
//
//  1. Attaching a live Telemetry sampler — progress rendering, heartbeat
//     JSONL, live .prom refresh, watchdog armed — changes no exported byte
//     and no journal byte, for seeds {7, 23} × threads {1, 4, hardware},
//     on both the materialized and the streaming study paths.
//  2. An injected stage delay (SchedulerFaultPlan) trips the stall watchdog
//     exactly once, and the warn event names the straggling app and stage.
//  3. The flight-recorder ring stays bounded while a corpus much larger than
//     the ring streams through, and every frame carries live RSS.
//  4. The heartbeat and live .prom surfaces produced during a real threaded
//     study are well-formed: monotone ticks, phase percentiles, terminal
//     "# EOF".
#include <gtest/gtest.h>

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/corpus_source.h"
#include "core/export.h"
#include "core/stream_export.h"
#include "core/stream_study.h"
#include "core/study.h"
#include "core/synthetic_corpus.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "store/generator.h"
#include "testing/fixtures.h"
#include "util/pipeline_scheduler.h"

namespace pinscope::core {
namespace {

/// Everything a run externalizes: exports, rendered verdicts, and the
/// decision journal — the byte surfaces telemetry must never touch.
struct RunBytes {
  std::string json;
  std::string csv;
  std::string verdicts;
  std::string journal;
};

std::string RenderVerdicts(const std::vector<report::AppVerdict>& verdicts) {
  std::string out;
  for (const report::AppVerdict& v : verdicts) {
    out += v.platform + "|" + v.app_id + "|" +
           (v.pins_at_runtime ? "1" : "0") +
           (v.potential_pinning ? "1" : "0") + (v.config_pinning ? "1" : "0");
    for (const std::string& host : v.pinned_hosts) out += "|" + host;
    out += "\n";
  }
  return out;
}

void ExpectSameBytes(const RunBytes& a, const RunBytes& b) {
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.journal, b.journal);
}

std::filesystem::path TempPath(const std::string& name) {
  return std::filesystem::temp_directory_path() /
         ("pinscope_telemetry_eq_" + name);
}

std::string Slurp(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

/// A fully-armed sampler: fast real ticks, plain progress swallowed into a
/// temp file, heartbeat + live .prom surfaces. The worst case for the
/// "changes nothing" contract.
struct TelemetryHarness {
  explicit TelemetryHarness(obs::Observer& observer, const std::string& tag) {
    progress_path = TempPath(tag + "_progress.txt");
    heartbeat_path = TempPath(tag + "_hb.jsonl");
    prom_path = TempPath(tag + "_live.prom");
    progress_file = std::fopen(progress_path.string().c_str(), "wb");
    obs::TelemetryOptions topts;
    topts.interval_ms = 2;
    topts.progress = obs::ProgressMode::kPlain;
    topts.progress_stream = progress_file;
    topts.heartbeat_path = heartbeat_path.string();
    topts.metrics_path = prom_path.string();
    topts.stall_ticks = 1 << 20;  // armed, but quiet for well-behaved runs
    telemetry =
        std::make_unique<obs::Telemetry>(&observer.metrics(), topts);
    telemetry->Start();
  }

  ~TelemetryHarness() {
    telemetry->Stop();
    if (progress_file != nullptr) std::fclose(progress_file);
    std::filesystem::remove(progress_path);
    std::filesystem::remove(heartbeat_path);
    std::filesystem::remove(prom_path);
  }

  std::unique_ptr<obs::Telemetry> telemetry;
  std::filesystem::path progress_path;
  std::filesystem::path heartbeat_path;
  std::filesystem::path prom_path;
  std::FILE* progress_file = nullptr;
};

RunBytes RunMaterialized(const store::Ecosystem& eco, int threads,
                         bool with_telemetry, const std::string& tag) {
  obs::Observer observer;
  obs::EventLog journal(obs::Severity::kInfo);
  observer.set_log(&journal);
  StudyOptions opts;
  opts.threads = threads;
  opts.observer = &observer;

  std::unique_ptr<TelemetryHarness> harness;
  if (with_telemetry) {
    harness = std::make_unique<TelemetryHarness>(observer, tag);
    opts.telemetry = harness->telemetry.get();
  }
  Study study(eco, opts);
  study.Run();
  if (harness != nullptr) {
    harness->telemetry->Stop();
    EXPECT_EQ(harness->telemetry->done(), harness->telemetry->total());
  }
  return {ExportStudyJson(study), ExportStudyCsv(study),
          RenderVerdicts(CollectAppVerdicts(study)), journal.ToJsonl()};
}

RunBytes RunStreamed(const store::Ecosystem& eco, int threads,
                     bool with_telemetry, const std::string& tag) {
  obs::Observer observer;
  obs::EventLog journal(obs::Severity::kInfo);
  observer.set_log(&journal);
  const EcosystemCorpusSource source(eco);
  StudyOptions opts;
  opts.threads = threads;
  opts.observer = &observer;

  std::unique_ptr<TelemetryHarness> harness;
  if (with_telemetry) {
    harness = std::make_unique<TelemetryHarness>(observer, tag);
    opts.telemetry = harness->telemetry.get();
  }
  StreamExporter exporter;
  (void)RunStreamingStudy(source, opts, exporter);
  if (harness != nullptr) {
    harness->telemetry->Stop();
    EXPECT_EQ(harness->telemetry->done(), harness->telemetry->total());
  }
  return {exporter.FinishJson(), exporter.FinishCsv(),
          RenderVerdicts(exporter.FinishVerdicts()), journal.ToJsonl()};
}

class TelemetryEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TelemetryEquivalenceTest, MaterializedExportsIdenticalTelemetryOnOrOff) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  const RunBytes reference =
      RunMaterialized(eco, /*threads=*/1, /*with_telemetry=*/false, "ref");
  ASSERT_FALSE(reference.json.empty());
  ASSERT_FALSE(reference.journal.empty());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 4, hw > 0 ? hw : 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunBytes live = RunMaterialized(
        eco, threads, /*with_telemetry=*/true,
        "mat_s" + std::to_string(GetParam()) + "_t" + std::to_string(threads));
    ExpectSameBytes(reference, live);
  }
}

TEST_P(TelemetryEquivalenceTest, StreamedExportsIdenticalTelemetryOnOrOff) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  const RunBytes reference =
      RunStreamed(eco, /*threads=*/1, /*with_telemetry=*/false, "sref");
  ASSERT_FALSE(reference.json.empty());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 4, hw > 0 ? hw : 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunBytes live = RunStreamed(
        eco, threads, /*with_telemetry=*/true,
        "str_s" + std::to_string(GetParam()) + "_t" + std::to_string(threads));
    ExpectSameBytes(reference, live);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TelemetryEquivalenceTest,
                         ::testing::Values(7u, 23u),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(TelemetryWatchdogTest, InjectedDelayFiresOnceAndNamesTheStraggler) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(7);
  const RunBytes reference =
      RunMaterialized(eco, /*threads=*/1, /*with_telemetry=*/false, "wref");

  // Work item 0 of the pipeline scheduler is the first pending android app;
  // stall its dynamic stage (stage index 1) long enough that every other
  // chain drains and the sampler sees a completion-free window.
  StudyOptions opts;
  opts.threads = 4;
  opts.scheduler = SchedulerKind::kPipeline;
  util::SchedulerFaultPlan faults;
  faults.Set(/*stage=*/1, /*item=*/0, {std::chrono::milliseconds(1500), 0});
  opts.fault_plan = &faults;

  obs::TelemetryOptions topts;
  topts.interval_ms = 10;
  topts.stall_ticks = 4;
  obs::Telemetry telemetry(nullptr, topts);
  opts.telemetry = &telemetry;

  Study probe(eco, {});
  const std::vector<std::size_t> android =
      probe.PendingIndices(appmodel::Platform::kAndroid);
  ASSERT_FALSE(android.empty());
  const std::string expected_app =
      eco.apps(appmodel::Platform::kAndroid)[android.front()].meta.app_id;

  telemetry.Start();
  Study study(eco, opts);
  study.Run();
  telemetry.Stop();

  // Exactly one stall: the watchdog fired once and re-armed only when the
  // delayed chain finally completed (after which the run ended).
  EXPECT_EQ(telemetry.watchdog_fires(), 1u);
  const std::vector<obs::LogEvent> events = telemetry.events().SortedEvents();
  const obs::LogEvent* stall = nullptr;
  for (const obs::LogEvent& e : events) {
    if (e.name == "telemetry.stall") {
      EXPECT_EQ(stall, nullptr) << "second stall event";
      stall = &e;
    }
  }
  ASSERT_NE(stall, nullptr);
  EXPECT_EQ(stall->severity, obs::Severity::kWarn);
  const obs::LogValue* app = obs::FindField(*stall, "straggler_app");
  const obs::LogValue* stage = obs::FindField(*stall, "straggler_stage");
  const obs::LogValue* platform = obs::FindField(*stall, "straggler_platform");
  ASSERT_NE(app, nullptr);
  ASSERT_NE(stage, nullptr);
  ASSERT_NE(platform, nullptr);
  EXPECT_EQ(app->AsString(), expected_app);
  EXPECT_EQ(stage->AsString(), "dynamic");
  EXPECT_EQ(platform->AsString(), "android");

  // A delayed (not failed) stage still produces byte-identical exports.
  EXPECT_EQ(ExportStudyJson(study), reference.json);
  EXPECT_EQ(ExportStudyCsv(study), reference.csv);
  EXPECT_EQ(RenderVerdicts(CollectAppVerdicts(study)), reference.verdicts);
}

TEST(TelemetryStreamScaleTest, RingStaysBoundedWhileACorpusStreamsThrough) {
  SyntheticCorpusConfig config;
  config.seed = 7;
  config.apps_per_platform = 256;  // 512 chains >> the 16-frame ring
  config.payload_bytes = 2048;
  // Unique payloads with embedded PEM blocks: every scan pays a real parse,
  // so the stream outlasts many 1 ms sampler ticks even on a fast machine.
  config.unique_payload = true;
  config.pem_certs_in_payload = 3;
  const SyntheticCorpusSource source(config);

  obs::Observer observer;
  obs::TelemetryOptions topts;
  topts.interval_ms = 1;
  topts.ring_capacity = 16;
  obs::Telemetry telemetry(&observer.metrics(), topts);

  StudyOptions opts;
  opts.threads = 2;
  opts.observer = &observer;
  opts.telemetry = &telemetry;
  StreamExporter exporter;
  telemetry.Start();
  (void)RunStreamingStudy(source, opts, exporter);
  telemetry.Stop();

  EXPECT_EQ(telemetry.done(), 512u);
  EXPECT_EQ(telemetry.total(), 512u);
  EXPECT_GT(telemetry.ticks(), 16u);
  const std::vector<obs::TelemetryFrame> frames = telemetry.Frames();
  ASSERT_FALSE(frames.empty());
  EXPECT_LE(frames.size(), 16u);
  // VmRSS is batched per-thread in /proc, so it can momentarily read a few
  // pages above VmHWM — compare with page-batching slack, not exactly.
  constexpr std::uint64_t kRssSlack = 4u << 20;
  for (const obs::TelemetryFrame& f : frames) {
    EXPECT_GT(f.rss_bytes, 0u);
    EXPECT_GE(f.peak_rss_bytes + kRssSlack, f.rss_bytes);
  }
  EXPECT_EQ(frames.back().done, 512u);
}

TEST(TelemetrySurfacesTest, RealStudyProducesMonotoneHeartbeatAndLiveProm) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(7);
  const std::filesystem::path hb = TempPath("surface_hb.jsonl");
  const std::filesystem::path prom = TempPath("surface_live.prom");
  std::filesystem::remove(hb);
  std::filesystem::remove(prom);

  obs::Observer observer;
  obs::TelemetryOptions topts;
  topts.interval_ms = 2;
  topts.heartbeat_path = hb.string();
  topts.metrics_path = prom.string();
  obs::Telemetry telemetry(&observer.metrics(), topts);

  StudyOptions opts;
  opts.threads = 4;
  opts.observer = &observer;
  opts.telemetry = &telemetry;
  telemetry.Start();
  Study study(eco, opts);
  study.Run();
  telemetry.Stop();

  // Heartbeat: monotone ticks/done, final line shows the finished run and
  // carries phase percentiles.
  const std::string heartbeat = Slurp(hb);
  ASSERT_FALSE(heartbeat.empty());
  std::istringstream lines(heartbeat);
  std::string line;
  std::string last_line;
  std::uint64_t last_tick = 0;
  while (std::getline(lines, line)) {
    std::uint64_t tick = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "{\"tick\": %" SCNu64, &tick), 1);
    EXPECT_GT(tick, last_tick);
    last_tick = tick;
    last_line = line;
  }
  EXPECT_NE(last_line.find(
                "\"done\": " + std::to_string(telemetry.done())),
            std::string::npos);
  EXPECT_NE(last_line.find("\"phases\": {"), std::string::npos);
  EXPECT_NE(last_line.find("\"phase.static\""), std::string::npos);
  EXPECT_NE(last_line.find("\"p90_us\""), std::string::npos);

  // Live OpenMetrics: complete document with percentile gauges, no torn tmp.
  const std::string body = Slurp(prom);
  ASSERT_FALSE(body.empty());
  EXPECT_NE(body.find("pinscope_phase_static_sum"), std::string::npos);
  EXPECT_NE(body.find("pinscope_phase_static_p99"), std::string::npos);
  const std::string eof_tail = "# EOF\n";
  ASSERT_GE(body.size(), eof_tail.size());
  EXPECT_EQ(body.substr(body.size() - eof_tail.size()), eof_tail);
  EXPECT_FALSE(std::filesystem::exists(prom.string() + ".tmp"));

  std::filesystem::remove(hb);
  std::filesystem::remove(prom);
}

}  // namespace
}  // namespace pinscope::core

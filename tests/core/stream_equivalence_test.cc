// Streaming-study equivalence suite (DESIGN.md §15). Three contracts:
//
//  1. Streamed == materialized: a streaming run over an EcosystemCorpusSource
//     exports byte-identical JSON/CSV (and an identical verdict set) to the
//     batch Study over the same ecosystem, for every cell of
//     seeds {7, 23} × threads {1, 4, hardware} × queue depths {1, 2, 64}.
//  2. Warm == cold: re-running with a persisted --cache-dir changes no
//     exported byte, and a damaged cache file silently degrades to a cold
//     start with — again — identical bytes.
//  3. Incremental == full: after one snapshot of store churn, re-analyzing
//     only the changed apps and merging over the previous run's rows equals
//     re-analyzing everything.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cache_persist.h"
#include "core/corpus_source.h"
#include "core/export.h"
#include "core/stream_export.h"
#include "core/stream_study.h"
#include "core/study.h"
#include "store/generator.h"
#include "testing/fixtures.h"

namespace pinscope::core {
namespace {

/// Everything a run externalizes, with verdicts rendered to text so the
/// comparison is a straight byte equality.
struct RunBytes {
  std::string json;
  std::string csv;
  std::string verdicts;
};

std::string RenderVerdicts(const std::vector<report::AppVerdict>& verdicts) {
  std::string out;
  for (const report::AppVerdict& v : verdicts) {
    out += v.platform + "|" + v.app_id + "|" +
           (v.pins_at_runtime ? "1" : "0") +
           (v.potential_pinning ? "1" : "0") + (v.config_pinning ? "1" : "0");
    for (const std::string& host : v.pinned_hosts) out += "|" + host;
    out += "\n";
  }
  return out;
}

struct StreamConfig {
  int threads = 1;
  std::size_t queue_depth = 0;
  std::string cache_dir;
  std::function<bool(appmodel::Platform, std::size_t)> app_filter;
};

RunBytes RunStreamed(const store::Ecosystem& eco, const StreamConfig& config,
                     StreamExporter* exporter_out = nullptr) {
  const EcosystemCorpusSource source(eco);
  StudyOptions opts;
  opts.threads = config.threads;
  opts.queue_depth = config.queue_depth;
  opts.cache_dir = config.cache_dir;
  opts.app_filter = config.app_filter;
  StreamExporter local;
  StreamExporter& exporter =
      exporter_out != nullptr ? *exporter_out : local;
  (void)RunStreamingStudy(source, opts, exporter);
  return {exporter.FinishJson(), exporter.FinishCsv(),
          RenderVerdicts(exporter.FinishVerdicts())};
}

RunBytes RunMaterialized(const store::Ecosystem& eco, int threads) {
  StudyOptions opts;
  opts.threads = threads;
  Study study(eco, opts);
  study.Run();
  return {ExportStudyJson(study), ExportStudyCsv(study),
          RenderVerdicts(CollectAppVerdicts(study))};
}

void ExpectSameBytes(const RunBytes& a, const RunBytes& b) {
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.verdicts, b.verdicts);
}

class StreamEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StreamEquivalenceTest, StreamedMatchesMaterializedAcrossTheGrid) {
  const store::Ecosystem& eco =
      pinscope::testing::MakeStudyCorpus(GetParam());
  const RunBytes reference = RunMaterialized(eco, /*threads=*/1);
  ASSERT_FALSE(reference.json.empty());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 4, hw > 0 ? hw : 2}) {
    for (const std::size_t depth : {std::size_t{1}, std::size_t{2},
                                    std::size_t{64}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " queue_depth=" + std::to_string(depth));
      StreamConfig config;
      config.threads = threads;
      config.queue_depth = depth;
      ExpectSameBytes(reference, RunStreamed(eco, config));
    }
  }
}

TEST_P(StreamEquivalenceTest, WarmStartAndDamagedCachesNeverChangeAByte) {
  const store::Ecosystem& eco =
      pinscope::testing::MakeStudyCorpus(GetParam());
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("pinscope_stream_warm_test_" + std::to_string(GetParam()));
  std::filesystem::remove_all(dir);

  StreamConfig cached;
  cached.threads = 4;
  cached.cache_dir = dir.string();
  const RunBytes cold = RunStreamed(eco, cached);
  ASSERT_FALSE(cold.json.empty());
  ASSERT_TRUE(std::filesystem::exists(ScanCachePathFor(dir.string())));
  ASSERT_TRUE(std::filesystem::exists(ValidationCachePathFor(dir.string())));

  const RunBytes warm = RunStreamed(eco, cached);
  ExpectSameBytes(cold, warm);

  // Damage both files differently: a flipped byte in one, free-form junk in
  // the other. The next run must fall back to a cold start — same bytes.
  {
    const std::string scan_path = ScanCachePathFor(dir.string());
    std::fstream f(scan_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    char last = 0;
    f.seekg(-1, std::ios::end);
    f.read(&last, 1);
    f.seekp(-1, std::ios::end);
    last = static_cast<char>(last ^ 0x01);
    f.write(&last, 1);
  }
  {
    std::ofstream f(ValidationCachePathFor(dir.string()),
                    std::ios::binary | std::ios::trunc);
    f << "this is not a cache file";
  }
  const RunBytes recovered = RunStreamed(eco, cached);
  ExpectSameBytes(cold, recovered);

  std::filesystem::remove_all(dir);
}

TEST_P(StreamEquivalenceTest, IncrementalReanalysisMatchesFullReanalysis) {
  store::EcosystemConfig config;
  config.seed = GetParam();
  config.scale = 24.0 / 5333.0;
  // Aggressive churn so even the mini corpus has changed apps to re-analyze.
  store::ChurnConfig churn_config;
  churn_config.host_renewal_rate = 0.5;
  churn_config.app_update_rate = 0.5;

  StreamConfig full_config;
  full_config.threads = 4;

  // Reference: churn, then re-analyze everything.
  store::Ecosystem full_eco = store::Ecosystem::Generate(config);
  (void)full_eco.AdvanceSnapshot(churn_config);
  const RunBytes reference = RunStreamed(full_eco, full_config);

  // Incremental: analyze snapshot 0, churn, re-analyze only changed apps,
  // merge this run's rows over the baseline's.
  store::Ecosystem inc_eco = store::Ecosystem::Generate(config);
  StreamExporter baseline;
  (void)RunStreamed(inc_eco, full_config, &baseline);
  const store::SnapshotChurn churn = inc_eco.AdvanceSnapshot(churn_config);
  ASSERT_FALSE(churn.changed_apps.empty())
      << "vacuous churn — raise the rates";

  std::set<std::pair<appmodel::Platform, std::size_t>> changed(
      churn.changed_apps.begin(), churn.changed_apps.end());
  StreamConfig delta_config;
  delta_config.threads = 4;
  delta_config.app_filter = [&changed](appmodel::Platform p,
                                       std::size_t idx) {
    return changed.contains({p, idx});
  };
  StreamExporter merged;
  (void)RunStreamed(inc_eco, delta_config, &merged);
  // The filter must actually have excluded unchanged apps, or this test
  // proves nothing.
  ASSERT_LT(merged.results(), baseline.results());

  merged.MergeBase(baseline);
  ExpectSameBytes(reference,
                  {merged.FinishJson(), merged.FinishCsv(),
                   RenderVerdicts(merged.FinishVerdicts())});
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamEquivalenceTest,
                         ::testing::Values(7u, 23u),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pinscope::core

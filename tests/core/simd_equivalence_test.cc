// SIMD-equivalence suite (ISSUE 7 acceptance): the multi-literal prefilter's
// vector kernels are a pure throughput change. For every cell of the grid
//   seeds {7, 23} × threads {1, 4, hardware_concurrency}
// a full study scanned with the best available SIMD level must reproduce the
// forced-portable study's
//   (a) JSON and CSV dataset exports,
//   (b) decision-journal JSONL (full kDebug fidelity), and
//   (c) run-report Markdown + JSON,
// byte for byte. The PINSCOPE_NO_SIMD / PINSCOPE_NO_PREFILTER knobs are read
// at scanner construction, so each study builds fresh scanners under the
// scoped environment; a level assertion guards against a vacuous comparison
// (both sides silently portable).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/export.h"
#include "core/study.h"
#include "crypto/cpu.h"
#include "obs/obs.h"
#include "report/run_report.h"
#include "staticanalysis/prefilter.h"
#include "testing/fixtures.h"

namespace pinscope::core {
namespace {

/// Scoped setenv/unsetenv so a failing assertion cannot leak a knob into
/// later tests in this binary.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    ::setenv(name, "1", /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

/// Everything a study run externalizes, captured as bytes.
struct RunOutput {
  std::string json;
  std::string csv;
  std::string journal;
  std::string report_md;
  std::string report_json;
};

RunOutput RunStudy(const store::Ecosystem& eco, int threads) {
  obs::Observer observer;
  obs::EventLog log(obs::Severity::kDebug);
  observer.set_log(&log);

  StudyOptions opts;
  opts.threads = threads;
  opts.dynamic.parallel_phases = threads != 1;
  opts.observer = &observer;
  Study study(eco, opts);
  study.Run();

  RunOutput out;
  out.json = ExportStudyJson(study);
  out.csv = ExportStudyCsv(study);
  out.journal = log.ToJsonl();

  report::RunReportInput input;
  input.verdicts = CollectAppVerdicts(study);
  const std::vector<obs::LogEvent> events = log.SortedEvents();
  input.events = &events;
  out.report_md = report::WriteRunReportMarkdown(input);
  out.report_json = report::WriteRunReportJson(input);

  observer.set_log(nullptr);
  return out;
}

class SimdEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimdEquivalenceTest, SimdAndPortableScansExportIdenticalBytes) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 4, hw > 0 ? hw : 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunOutput simd = RunStudy(eco, threads);
    ASSERT_FALSE(simd.json.empty());
    ASSERT_FALSE(simd.journal.empty());

    {
      const ScopedEnv no_simd("PINSCOPE_NO_SIMD");
      // Not vacuous: forcing the knob really changes the kernel in play.
      const staticanalysis::MultiLiteralPrefilter probe({"sha"});
      ASSERT_EQ(probe.level(), crypto::cpu::SimdLevel::kPortable);

      const RunOutput portable = RunStudy(eco, threads);
      EXPECT_EQ(simd.json, portable.json);
      EXPECT_EQ(simd.csv, portable.csv);
      EXPECT_EQ(simd.journal, portable.journal);
      EXPECT_EQ(simd.report_md, portable.report_md);
      EXPECT_EQ(simd.report_json, portable.report_json);
    }
  }
}

TEST_P(SimdEquivalenceTest, DisablingThePrefilterEntirelyChangesNoByte) {
  // Stronger than kernel equivalence: the legacy per-pattern anchor sweep
  // (no prefilter at all) must agree with the prefiltered scan too.
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  const RunOutput with_prefilter = RunStudy(eco, 1);
  const ScopedEnv no_prefilter("PINSCOPE_NO_PREFILTER");
  const RunOutput legacy = RunStudy(eco, 1);
  EXPECT_EQ(with_prefilter.json, legacy.json);
  EXPECT_EQ(with_prefilter.csv, legacy.csv);
  EXPECT_EQ(with_prefilter.journal, legacy.journal);
  EXPECT_EQ(with_prefilter.report_md, legacy.report_md);
  EXPECT_EQ(with_prefilter.report_json, legacy.report_json);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdEquivalenceTest,
                         ::testing::Values(std::uint64_t{7},
                                           std::uint64_t{23}));

}  // namespace
}  // namespace pinscope::core

// Determinism-equivalence suite: the parallel study must be bit-identical
// to the serial one. For several generation seeds, the same ecosystem is
// analyzed at threads ∈ {1, 4, hardware_concurrency} (with the two-phase
// pipeline fan-out on for the threaded runs) and every observable output is
// compared: the JSON/CSV dataset exports byte for byte, plus the Table 3
// prevalence rows and Figure 2-4 consistency structs field by field.
#include <gtest/gtest.h>

#include <thread>

#include "core/analyses.h"
#include "core/export.h"
#include "core/study.h"
#include "testing/fixtures.h"

namespace pinscope::core {
namespace {

using appmodel::Platform;
using store::DatasetId;

Study RunStudy(const store::Ecosystem& eco, int threads) {
  StudyOptions opts;
  opts.threads = threads;
  opts.dynamic.parallel_phases = threads != 1;
  Study study(eco, opts);
  study.Run();
  return study;
}

void ExpectSamePrevalence(const Study& serial, const Study& parallel) {
  for (const DatasetId id : store::AllDatasets()) {
    for (const Platform p : {Platform::kAndroid, Platform::kIos}) {
      const PrevalenceRow a = ComputePrevalence(serial, id, p);
      const PrevalenceRow b = ComputePrevalence(parallel, id, p);
      EXPECT_EQ(a.total, b.total) << DatasetName(id) << " " << PlatformName(p);
      EXPECT_EQ(a.dynamic_pinning, b.dynamic_pinning)
          << DatasetName(id) << " " << PlatformName(p);
      EXPECT_EQ(a.embedded_static, b.embedded_static)
          << DatasetName(id) << " " << PlatformName(p);
      EXPECT_EQ(a.config_pinning, b.config_pinning)
          << DatasetName(id) << " " << PlatformName(p);
    }
  }
}

void ExpectSameConsistency(const Study& serial, const Study& parallel) {
  const auto a = AnalyzeCommonPairs(serial);
  const auto b = AnalyzeCommonPairs(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].android_index, b[i].android_index) << i;
    EXPECT_EQ(a[i].ios_index, b[i].ios_index) << i;
    EXPECT_EQ(a[i].name, b[i].name) << i;
    EXPECT_EQ(a[i].pinned_android, b[i].pinned_android) << i;
    EXPECT_EQ(a[i].pinned_ios, b[i].pinned_ios) << i;
    EXPECT_EQ(a[i].unpinned_android, b[i].unpinned_android) << i;
    EXPECT_EQ(a[i].unpinned_ios, b[i].unpinned_ios) << i;
    EXPECT_EQ(a[i].mode, b[i].mode) << i;
    EXPECT_EQ(a[i].verdict, b[i].verdict) << i;
    EXPECT_EQ(a[i].identical_sets, b[i].identical_sets) << i;
    // Identical inputs must reproduce the doubles exactly, not approximately.
    EXPECT_EQ(a[i].jaccard, b[i].jaccard) << i;
    EXPECT_EQ(a[i].android_pinned_unpinned_on_ios,
              b[i].android_pinned_unpinned_on_ios)
        << i;
    EXPECT_EQ(a[i].ios_pinned_unpinned_on_android,
              b[i].ios_pinned_unpinned_on_android)
        << i;
  }
}

class DeterminismEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismEquivalenceTest, ThreadCountNeverChangesAnyExportByte) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());

  const Study serial = RunStudy(eco, 1);
  const std::string json = ExportStudyJson(serial);
  const std::string csv = ExportStudyCsv(serial);
  ASSERT_FALSE(json.empty());
  ASSERT_FALSE(csv.empty());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {4, hw > 0 ? hw : 2, 0}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Study parallel = RunStudy(eco, threads);
    // Byte-identical exports are the headline guarantee…
    EXPECT_EQ(json, ExportStudyJson(parallel));
    EXPECT_EQ(csv, ExportStudyCsv(parallel));
    // …and the aggregate result structs must agree too (the exports do not
    // serialize every field the analyses read).
    ExpectSamePrevalence(serial, parallel);
    ExpectSameConsistency(serial, parallel);
  }
}

TEST_P(DeterminismEquivalenceTest, RerunWithSameThreadsIsAlsoIdentical) {
  // Guards against nondeterminism *within* one configuration (e.g. a stray
  // draw from shared RNG state), which two-configuration comparison alone
  // would miss if both runs drifted identically.
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  const Study first = RunStudy(eco, 4);
  const Study second = RunStudy(eco, 4);
  EXPECT_EQ(ExportStudyJson(first), ExportStudyJson(second));
  EXPECT_EQ(ExportStudyCsv(first), ExportStudyCsv(second));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismEquivalenceTest,
                         ::testing::Values(3u, 11u, 42u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(ParallelStudyTest, ParallelPhasesAloneAreByteIdenticalToSerial) {
  // Isolates the pipeline's two-phase fan-out from the per-app fan-out.
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(3);
  StudyOptions serial_opts;
  Study serial(eco, serial_opts);
  serial.Run();

  StudyOptions phase_opts;
  phase_opts.dynamic.parallel_phases = true;
  Study phased(eco, phase_opts);
  phased.Run();

  EXPECT_EQ(ExportStudyJson(serial), ExportStudyJson(phased));
  EXPECT_EQ(ExportStudyCsv(serial), ExportStudyCsv(phased));
}

}  // namespace
}  // namespace pinscope::core

// Cache-equivalence suite: the corpus-wide scan cache must be unobservable
// in results. For several generation seeds, the same ecosystem is analyzed
// with the cache off (serial reference) and with the cache on at threads ∈
// {1, 4, hardware_concurrency}; the JSON/CSV dataset exports must be byte
// for byte identical in every configuration — mirroring the PR 1
// determinism-equivalence suite, with the cache knob as the variable.
#include <gtest/gtest.h>

#include <thread>

#include "core/export.h"
#include "core/study.h"
#include "testing/fixtures.h"

namespace pinscope::core {
namespace {

Study RunStudy(const store::Ecosystem& eco, int threads, bool scan_cache) {
  StudyOptions opts;
  opts.threads = threads;
  opts.dynamic.parallel_phases = threads != 1;
  opts.scan_cache = scan_cache;
  Study study(eco, opts);
  study.Run();
  return study;
}

class ScanCacheEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScanCacheEquivalenceTest, CacheNeverChangesAnyExportByte) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());

  const Study reference = RunStudy(eco, 1, /*scan_cache=*/false);
  EXPECT_EQ(reference.scan_cache(), nullptr);
  const std::string json = ExportStudyJson(reference);
  const std::string csv = ExportStudyCsv(reference);
  ASSERT_FALSE(json.empty());
  ASSERT_FALSE(csv.empty());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 4, hw > 0 ? hw : 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Study cached = RunStudy(eco, threads, /*scan_cache=*/true);
    EXPECT_EQ(json, ExportStudyJson(cached));
    EXPECT_EQ(csv, ExportStudyCsv(cached));

    // The cache must actually have been exercised, and its books must
    // balance; the per-configuration hit counts may differ (scheduling
    // decides who takes each miss), which is exactly why they are not part
    // of any export.
    ASSERT_NE(cached.scan_cache(), nullptr);
    const staticanalysis::ScanCacheStats stats = cached.scan_cache()->Stats();
    EXPECT_GT(stats.lookups, 0u);
    EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
    EXPECT_LE(stats.entries, stats.misses);
    EXPECT_GT(stats.hits, 0u);  // The study corpus apps share SDK artifacts
  }
}

TEST_P(ScanCacheEquivalenceTest, CacheOffIsAlsoThreadCountInvariant) {
  // Closes the square: the parallel suite proves threads don't matter with
  // the default (cached) study; this proves the uncached study is equally
  // schedule-free, so the two knobs are independent.
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  const Study serial = RunStudy(eco, 1, /*scan_cache=*/false);
  const Study parallel = RunStudy(eco, 4, /*scan_cache=*/false);
  EXPECT_EQ(ExportStudyJson(serial), ExportStudyJson(parallel));
  EXPECT_EQ(ExportStudyCsv(serial), ExportStudyCsv(parallel));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanCacheEquivalenceTest,
                         ::testing::Values(3u, 11u, 42u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pinscope::core

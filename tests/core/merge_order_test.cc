// Property test for the result-merge step: whatever order per-app work
// units complete in, merging yields the same aggregated study state. This is
// the invariant that lets Study::Run() ignore scheduling entirely.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/export.h"
#include "core/study.h"
#include "testing/fixtures.h"
#include "util/rng.h"

namespace pinscope::core {
namespace {

using appmodel::Platform;

// A stable digest of everything a merged result map contains that downstream
// analyses can observe.
std::string Fingerprint(const std::map<std::size_t, AppResult>& merged) {
  std::string out;
  for (const auto& [index, r] : merged) {
    out += std::to_string(index) + "|" + r.app->meta.app_id + "|" +
           (r.static_report.PotentialPinning() ? "S" : "-") +
           (r.static_report.ConfigPinning() ? "C" : "-") + "|";
    for (const auto& dest : r.dynamic_report.destinations) {
      out += dest.hostname + (dest.pinned ? "+p" : "-p") +
             (dest.circumvented ? "+c" : "-c") +
             (dest.weak_cipher ? "+w" : "-w") + ";";
    }
    out += "\n";
  }
  return out;
}

std::vector<AppResult> AnalyzeAll(const Study& study,
                                  const store::Ecosystem& eco, Platform p) {
  std::vector<std::size_t> indices;
  for (const store::DatasetId id : store::AllDatasets()) {
    for (std::size_t idx : eco.dataset(id, p).app_indices) {
      indices.push_back(idx);
    }
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());

  std::vector<AppResult> results;
  results.reserve(indices.size());
  for (std::size_t idx : indices) results.push_back(study.AnalyzeApp(p, idx));
  return results;
}

TEST(MergeOrderTest, AnyCompletionPermutationYieldsIdenticalResults) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(11);
  const Study study(eco);

  for (const Platform p : {Platform::kAndroid, Platform::kIos}) {
    SCOPED_TRACE(PlatformName(p));
    std::vector<AppResult> results = AnalyzeAll(study, eco, p);
    ASSERT_GT(results.size(), 1u);

    const std::string reference = Fingerprint(MergeByIndex(results));

    util::Rng rng(0xfeedface);
    for (int round = 0; round < 10; ++round) {
      std::vector<AppResult> permuted = results;  // AppResult is copyable
      rng.Shuffle(permuted);
      EXPECT_EQ(Fingerprint(MergeByIndex(std::move(permuted))), reference)
          << "permutation round " << round;
    }
  }
}

TEST(MergeOrderTest, MergedKeysAreSortedUniverseIndices) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(11);
  const Study study(eco);
  std::vector<AppResult> results = AnalyzeAll(study, eco, Platform::kAndroid);
  const auto merged = MergeByIndex(std::move(results));
  std::size_t prev = 0;
  bool first = true;
  for (const auto& [index, r] : merged) {
    EXPECT_EQ(index, r.universe_index);
    if (!first) {
      EXPECT_GT(index, prev);
    }
    prev = index;
    first = false;
  }
}

TEST(MergeOrderTest, DuplicateIndexIsRejected) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(11);
  const Study study(eco);
  std::vector<AppResult> results = AnalyzeAll(study, eco, Platform::kAndroid);
  ASSERT_FALSE(results.empty());
  results.push_back(results.front());
  EXPECT_THROW((void)MergeByIndex(std::move(results)), util::Error);
}

}  // namespace
}  // namespace pinscope::core

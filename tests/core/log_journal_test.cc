// Decision-journal acceptance suite (DESIGN.md §12): the journal is part of
// the determinism contract. For two generation seeds this proves
//   (a) the JSONL journal is byte-identical across thread counts,
//   (b) attaching a journal never changes an exported study byte,
//   (c) every exported per-app verdict has at least one attributing
//       decision event in the journal, and
//   (d) raising the severity floor drops events without reordering (the
//       filtered journal is a byte-exact subsequence of the full one).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/export.h"
#include "core/study.h"
#include "obs/obs.h"
#include "report/run_report.h"
#include "testing/fixtures.h"

namespace pinscope::core {
namespace {

Study RunStudy(const store::Ecosystem& eco, int threads,
               obs::Observer* observer) {
  StudyOptions opts;
  opts.threads = threads;
  opts.dynamic.parallel_phases = threads != 1;
  opts.observer = observer;
  Study study(eco, opts);
  study.Run();
  return study;
}

/// Runs the study at `threads` with a journal at `min_severity` attached;
/// returns the serialized journal.
std::string JournalFor(const store::Ecosystem& eco, int threads,
                       obs::Severity min_severity) {
  obs::Observer observer;
  obs::EventLog log(min_severity);
  observer.set_log(&log);
  (void)RunStudy(eco, threads, &observer);
  return log.ToJsonl();
}

class LogJournalTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogJournalTest, JournalIsByteIdenticalAcrossThreadCounts) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  const std::string reference = JournalFor(eco, 1, obs::Severity::kDebug);
  ASSERT_FALSE(reference.empty());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {4, hw > 0 ? hw : 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(reference, JournalFor(eco, threads, obs::Severity::kDebug));
  }
}

TEST_P(LogJournalTest, AttachedJournalNeverChangesAnExportByte) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());

  const Study detached = RunStudy(eco, 4, /*observer=*/nullptr);
  const std::string json = ExportStudyJson(detached);
  const std::string csv = ExportStudyCsv(detached);

  obs::Observer observer;
  obs::EventLog log(obs::Severity::kDebug);
  observer.set_log(&log);
  const Study attached = RunStudy(eco, 4, &observer);
  EXPECT_GT(log.EventCount(), 0u);
  EXPECT_EQ(json, ExportStudyJson(attached));
  EXPECT_EQ(csv, ExportStudyCsv(attached));
}

TEST_P(LogJournalTest, EveryVerdictHasAttributingDecisionEvents) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  obs::Observer observer;
  obs::EventLog log(obs::Severity::kDecision);
  observer.set_log(&log);
  const Study study = RunStudy(eco, 4, &observer);

  const std::vector<report::AppVerdict> verdicts = CollectAppVerdicts(study);
  ASSERT_FALSE(verdicts.empty());
  const std::vector<obs::LogEvent> events = log.SortedEvents();

  auto has_event = [&](const report::AppVerdict& v, auto&& pred) {
    for (const obs::LogEvent& e : events) {
      if (e.platform == v.platform && e.app_id == v.app_id && pred(e)) {
        return true;
      }
    }
    return false;
  };
  auto pinned_divergence = [](const obs::LogEvent& e) {
    if (e.name != "dynamic.divergence") return false;
    const obs::LogValue* pinned = obs::FindField(e, "pinned");
    return pinned != nullptr && pinned->AsBool();
  };

  for (const report::AppVerdict& v : verdicts) {
    SCOPED_TRACE(v.platform + "/" + v.app_id);
    // Every app's verdict — positive or negative — carries a final
    // dynamic.verdict and static.verdict decision event.
    EXPECT_TRUE(has_event(v, [](const obs::LogEvent& e) {
      return e.name == "dynamic.verdict";
    }));
    EXPECT_TRUE(has_event(v, [](const obs::LogEvent& e) {
      return e.name == "static.verdict";
    }));
    if (v.pins_at_runtime) {
      EXPECT_TRUE(has_event(v, pinned_divergence));
    }
    if (v.potential_pinning) {
      EXPECT_TRUE(has_event(v, [](const obs::LogEvent& e) {
        return e.name == "static.pin_found" || e.name == "static.cert_found";
      }));
    }
    if (v.config_pinning) {
      EXPECT_TRUE(has_event(v, [](const obs::LogEvent& e) {
        return e.name == "nsc.pin_set" || e.name == "ats.pinned_domain";
      }));
    }
    // And the report generator turns those events into at least one
    // human-readable reason whenever any verdict fired.
    if (v.pins_at_runtime || v.potential_pinning || v.config_pinning) {
      EXPECT_FALSE(report::AttributionFor(v, events).empty());
    }
  }
}

TEST_P(LogJournalTest, SeverityFilterDropsWithoutReordering) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  const std::string full = JournalFor(eco, 4, obs::Severity::kDebug);
  const std::string filtered = JournalFor(eco, 4, obs::Severity::kDecision);
  ASSERT_FALSE(filtered.empty());
  ASSERT_LT(filtered.size(), full.size());

  // Every filtered line appears in the full journal, in the same order —
  // a byte-exact subsequence (seq numbers are allocated before filtering).
  std::size_t pos = 0;
  std::size_t start = 0;
  while (start < filtered.size()) {
    std::size_t end = filtered.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = filtered.substr(start, end - start + 1);
    const std::size_t found = full.find(line, pos);
    ASSERT_NE(found, std::string::npos) << line;
    pos = found + line.size();
    start = end + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogJournalTest, ::testing::Values(7u, 23u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pinscope::core

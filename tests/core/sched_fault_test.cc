// Fault-injection suite for the pipelined scheduler (DESIGN.md §13): a slow
// or failing app must never stall its siblings, stage failures surface as
// per-app error verdicts instead of aborted studies, and transient failures
// recovered by retries leave no trace — exports and journal stay
// byte-identical to a fault-free run (faults inject at stage *entry*, before
// the stage body writes anything).
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/export.h"
#include "core/pipeline_study.h"
#include "core/study.h"
#include "obs/obs.h"
#include "report/run_report.h"
#include "testing/fixtures.h"
#include "util/pipeline_scheduler.h"

namespace pinscope::core {
namespace {

using namespace std::chrono_literals;

/// One pipelined run plus everything it externalized.
struct FaultRun {
  Study study;
  std::string json;
  std::string csv;
  std::string journal;
  /// platform/app_id of every result with failed() set, sorted.
  std::vector<std::string> failed_apps;
};

FaultRun RunPipelined(const store::Ecosystem& eco,
                      const util::SchedulerFaultPlan* plan, int retries,
                      std::function<void(const AppResult&)> on_result = {},
                      obs::Observer* external_observer = nullptr) {
  obs::Observer local_observer;
  obs::Observer& observer =
      external_observer != nullptr ? *external_observer : local_observer;
  obs::EventLog log(obs::Severity::kDebug);
  observer.set_log(&log);

  StudyOptions opts;
  opts.scheduler = SchedulerKind::kPipeline;
  opts.threads = 4;
  opts.dynamic.parallel_phases = true;
  opts.fault_plan = plan;
  opts.stage_retries = retries;
  opts.observer = &observer;
  opts.on_result = std::move(on_result);

  FaultRun run{Study(eco, opts), {}, {}, {}, {}};
  run.study.Run();
  run.json = ExportStudyJson(run.study);
  run.csv = ExportStudyCsv(run.study);
  run.journal = log.ToJsonl();
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const AppResult* r : run.study.AllResults(p)) {
      if (r->failed()) {
        run.failed_apps.push_back(std::string(appmodel::PlatformName(p)) +
                                  "/" + r->app->meta.app_id);
      }
    }
  }
  observer.set_log(nullptr);
  return run;
}

/// platform/app_id → rendered verdict line, for per-app comparison between a
/// faulty run and a clean one.
std::map<std::string, std::string> VerdictsByApp(const Study& study) {
  std::map<std::string, std::string> verdicts;
  for (const report::AppVerdict& v : CollectAppVerdicts(study)) {
    std::string line = std::string(v.pins_at_runtime ? "runtime " : "") +
                       (v.potential_pinning ? "potential " : "") +
                       (v.config_pinning ? "config " : "");
    for (const std::string& host : v.pinned_hosts) line += host + " ";
    verdicts[v.platform + "/" + v.app_id] = line;
  }
  return verdicts;
}

TEST(SchedFaultTest, SlowAppNeverStallsSiblings) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(7);
  const std::vector<PipelineWorkItem> work =
      BuildPipelineWorkList(Study(eco, {}));
  ASSERT_GT(work.size(), 8u);

  // Work item 0's static stage sleeps. Under a phase barrier no app could
  // finish before the slow one cleared static; barrier-free, the siblings'
  // whole chains stream out during the sleep and the slow app lands in the
  // back half of the completion order.
  util::SchedulerFaultPlan plan;
  plan.Set(/*stage=*/0, /*item=*/0, {.delay = 750ms, .fail_times = 0});

  std::mutex mu;
  std::vector<std::pair<appmodel::Platform, std::size_t>> completion_order;
  const FaultRun slow =
      RunPipelined(eco, &plan, /*retries=*/0, [&](const AppResult& r) {
        std::lock_guard<std::mutex> lock(mu);
        completion_order.emplace_back(r.app->meta.platform, r.universe_index);
      });
  EXPECT_TRUE(slow.failed_apps.empty());
  ASSERT_EQ(completion_order.size(), work.size());

  const std::pair<appmodel::Platform, std::size_t> slow_app{
      work[0].platform, work[0].universe_index};
  std::size_t position = completion_order.size();
  for (std::size_t i = 0; i < completion_order.size(); ++i) {
    if (completion_order[i] == slow_app) position = i;
  }
  ASSERT_LT(position, completion_order.size());  // it did complete
  EXPECT_GE(position, completion_order.size() / 2)
      << "siblings waited for the slow app";

  // The delay was pure schedule perturbation: results match a clean run.
  const FaultRun clean = RunPipelined(eco, nullptr, 0);
  EXPECT_EQ(clean.json, slow.json);
  EXPECT_EQ(clean.csv, slow.csv);
  EXPECT_EQ(clean.journal, slow.journal);
}

TEST(SchedFaultTest, FailingAppSurfacesAsErrorVerdictNotAbortedStudy) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(7);
  util::SchedulerFaultPlan plan;
  // More failures than the retry budget: item 2's static stage is terminal.
  plan.Set(/*stage=*/0, /*item=*/2, {.delay = 0ms, .fail_times = 1000000});

  const FaultRun out = RunPipelined(eco, &plan, /*retries=*/1);
  ASSERT_EQ(out.failed_apps.size(), 1u);

  const std::vector<PipelineWorkItem> work =
      BuildPipelineWorkList(Study(eco, {}));
  const AppResult& failed =
      out.study.result(work[2].platform, work[2].universe_index);
  ASSERT_TRUE(failed.failed());
  EXPECT_NE(failed.error.find("static:"), std::string::npos) << failed.error;
  // The fault fired before the stage body: the report was never written.
  EXPECT_TRUE(failed.static_report.app_id.empty());

  // Every sibling's verdicts are untouched by the failure.
  const FaultRun clean = RunPipelined(eco, nullptr, 0);
  EXPECT_TRUE(clean.failed_apps.empty());
  const std::map<std::string, std::string> clean_verdicts =
      VerdictsByApp(clean.study);
  const std::map<std::string, std::string> faulty_verdicts =
      VerdictsByApp(out.study);
  ASSERT_EQ(clean_verdicts.size(), faulty_verdicts.size());
  for (const auto& [app, verdict] : clean_verdicts) {
    if (app == out.failed_apps[0]) continue;
    EXPECT_EQ(faulty_verdicts.at(app), verdict) << app;
  }
  // And the study as a whole completed: exports and journal exist.
  EXPECT_FALSE(out.json.empty());
  EXPECT_FALSE(out.journal.empty());
}

TEST(SchedFaultTest, TransientFailureRecoversWithRetriesByteIdentically) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(7);
  const FaultRun clean = RunPipelined(eco, nullptr, 0);

  util::SchedulerFaultPlan plan;
  plan.Set(/*stage=*/0, /*item=*/1, {.delay = 5ms, .fail_times = 2});
  plan.Set(/*stage=*/1, /*item=*/3, {.delay = 0ms, .fail_times = 1});
  const FaultRun retried = RunPipelined(eco, &plan, /*retries=*/2);

  // Both faults were transient and the budget covered them: no error
  // verdicts, and — because injection precedes the stage body — the retried
  // stages replayed cleanly. Byte-identical everything.
  EXPECT_TRUE(retried.failed_apps.empty());
  EXPECT_EQ(clean.json, retried.json);
  EXPECT_EQ(clean.csv, retried.csv);
  EXPECT_EQ(clean.journal, retried.journal);
}

TEST(SchedFaultTest, DynamicStageFaultIsAttributedToTheDynamicStage) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(23);
  util::SchedulerFaultPlan plan;
  plan.Set(/*stage=*/1, /*item=*/0, {.delay = 0ms, .fail_times = 1000000});

  obs::Observer observer;
  const FaultRun out = RunPipelined(eco, &plan, /*retries=*/0, {}, &observer);
  ASSERT_EQ(out.failed_apps.size(), 1u);

  const std::vector<PipelineWorkItem> work =
      BuildPipelineWorkList(Study(eco, {}));
  const AppResult& failed =
      out.study.result(work[0].platform, work[0].universe_index);
  ASSERT_TRUE(failed.failed());
  EXPECT_NE(failed.error.find("dynamic:"), std::string::npos) << failed.error;
  // The chain ran front to back: static completed before the dynamic fault.
  EXPECT_EQ(failed.static_report.app_id, failed.app->meta.app_id);

  // sched.* metrics recorded the failure.
  const obs::MetricsSnapshot snap = observer.metrics().Snapshot();
  ASSERT_TRUE(snap.counters.count("sched.failures"));
  EXPECT_EQ(snap.counters.at("sched.failures"), 1u);
}

}  // namespace
}  // namespace pinscope::core

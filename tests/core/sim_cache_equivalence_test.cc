// Cache-equivalence suite for the connection-simulation fixtures: the shared
// proxy + root stores + forged-leaf cache + chain-validation memo must be
// unobservable in results. For several generation seeds, the same ecosystem
// is analyzed with the fixtures off (serial reference) and with them on at
// threads ∈ {1, 4, hardware_concurrency}; the JSON/CSV dataset exports must
// be byte for byte identical in every configuration — the same contract the
// scan-cache suite proves for the static layer.
#include <gtest/gtest.h>

#include <thread>

#include "core/export.h"
#include "core/study.h"
#include "testing/fixtures.h"

namespace pinscope::core {
namespace {

Study RunStudy(const store::Ecosystem& eco, int threads, bool sim_cache) {
  StudyOptions opts;
  opts.threads = threads;
  opts.dynamic.parallel_phases = threads != 1;
  opts.sim_cache = sim_cache;
  Study study(eco, opts);
  study.Run();
  return study;
}

class SimCacheEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimCacheEquivalenceTest, FixturesNeverChangeAnyExportByte) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());

  const Study reference = RunStudy(eco, 1, /*sim_cache=*/false);
  EXPECT_EQ(reference.sim_fixtures(), nullptr);
  const std::string json = ExportStudyJson(reference);
  const std::string csv = ExportStudyCsv(reference);
  ASSERT_FALSE(json.empty());
  ASSERT_FALSE(csv.empty());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 4, hw > 0 ? hw : 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Study cached = RunStudy(eco, threads, /*sim_cache=*/true);
    EXPECT_EQ(json, ExportStudyJson(cached));
    EXPECT_EQ(csv, ExportStudyCsv(cached));

    // Both shared caches must actually have been exercised, and their books
    // must balance; hit attribution may vary with scheduling, which is
    // exactly why counters are not part of any export.
    ASSERT_NE(cached.sim_fixtures(), nullptr);
    const net::ForgedLeafCacheStats forged =
        cached.sim_fixtures()->forged_cache_stats();
    EXPECT_GT(forged.lookups, 0u);
    EXPECT_EQ(forged.hits + forged.misses, forged.lookups);
    EXPECT_LE(forged.entries, forged.misses);
    EXPECT_GT(forged.hits, 0u);  // The study corpus apps share destinations

    const x509::ValidationCacheStats val =
        cached.sim_fixtures()->validation_cache_stats();
    EXPECT_GT(val.lookups, 0u);
    EXPECT_EQ(val.hits + val.misses, val.lookups);
    EXPECT_LE(val.entries, val.misses);
    EXPECT_GT(val.hits, 0u);  // shared chains revalidate across apps
  }
}

TEST_P(SimCacheEquivalenceTest, FixturesOffIsAlsoThreadCountInvariant) {
  // Closes the square with the parallel suite: without fixtures the study is
  // equally schedule-free, so the two knobs are independent.
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  const Study serial = RunStudy(eco, 1, /*sim_cache=*/false);
  const Study parallel = RunStudy(eco, 4, /*sim_cache=*/false);
  EXPECT_EQ(ExportStudyJson(serial), ExportStudyJson(parallel));
  EXPECT_EQ(ExportStudyCsv(serial), ExportStudyCsv(parallel));
}

TEST_P(SimCacheEquivalenceTest, BothCacheLayersComposeCleanly) {
  // Scan cache off + sim cache on, and vice versa, all match the all-off
  // reference: the two memo layers are orthogonal.
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());

  StudyOptions all_off;
  all_off.threads = 1;
  all_off.scan_cache = false;
  all_off.sim_cache = false;
  Study reference(eco, all_off);
  reference.Run();
  const std::string json = ExportStudyJson(reference);
  const std::string csv = ExportStudyCsv(reference);

  for (const bool scan : {false, true}) {
    for (const bool sim : {false, true}) {
      SCOPED_TRACE("scan=" + std::to_string(scan) + " sim=" + std::to_string(sim));
      StudyOptions opts;
      opts.threads = 4;
      opts.dynamic.parallel_phases = true;
      opts.scan_cache = scan;
      opts.sim_cache = sim;
      Study study(eco, opts);
      study.Run();
      EXPECT_EQ(json, ExportStudyJson(study));
      EXPECT_EQ(csv, ExportStudyCsv(study));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimCacheEquivalenceTest,
                         ::testing::Values(3u, 11u, 42u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pinscope::core

// Observability-equivalence suite: attaching an Observer (metrics registry +
// trace sink) to a study must be unobservable in results. For two generation
// seeds, the same ecosystem is analyzed without an observer (serial
// reference) and with one at threads ∈ {1, 4, hardware_concurrency}; the
// JSON/CSV dataset exports must be byte for byte identical in every
// configuration — the same contract the scan-cache and sim-cache suites
// prove for their layers. On top of that, the suite pins down what the
// observer must actually have collected: all three cache families published
// as gauges (with a warm validation cache showing real hits on the shared-SDK
// corpus), per-phase histograms, and a trace whose span count grows with the
// corpus.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "core/export.h"
#include "core/study.h"
#include "obs/obs.h"
#include "testing/fixtures.h"

namespace pinscope::core {
namespace {

Study RunStudy(const store::Ecosystem& eco, int threads,
               obs::Observer* observer) {
  StudyOptions opts;
  opts.threads = threads;
  opts.dynamic.parallel_phases = threads != 1;
  opts.observer = observer;
  Study study(eco, opts);
  study.Run();
  return study;
}

class ObsEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObsEquivalenceTest, ObserverNeverChangesAnyExportByte) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());

  const Study reference = RunStudy(eco, 1, /*observer=*/nullptr);
  const std::string json = ExportStudyJson(reference);
  const std::string csv = ExportStudyCsv(reference);
  ASSERT_FALSE(json.empty());
  ASSERT_FALSE(csv.empty());

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int threads : {1, 4, hw > 0 ? hw : 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    obs::Observer observer;
    const Study observed = RunStudy(eco, threads, &observer);
    EXPECT_EQ(json, ExportStudyJson(observed));
    EXPECT_EQ(csv, ExportStudyCsv(observed));

    // The observer was not a bystander: every layer reported in.
    const obs::MetricsSnapshot snap = observer.metrics().Snapshot();
    EXPECT_GT(snap.counters.at("study.apps_analyzed"), 0u);
    EXPECT_GT(snap.counters.at("x509.chain_validations"), 0u);
    EXPECT_GT(snap.counters.at("tls.handshakes"), 0u);
    EXPECT_GT(snap.counters.at("net.intercepts"), 0u);
    EXPECT_GT(snap.histograms.at("phase.static").count, 0u);
    EXPECT_GT(snap.histograms.at("phase.dynamic").count, 0u);
    EXPECT_EQ(snap.histograms.at("phase.study").count, 1u);
    EXPECT_GT(observer.trace().EventCount(), 0u);
  }
}

TEST_P(ObsEquivalenceTest, RunPublishesAllThreeCacheFamiliesAsGauges) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  obs::Observer observer;
  const Study study = RunStudy(eco, 4, &observer);
  const obs::MetricsSnapshot snap = observer.metrics().Snapshot();

  for (const char* family : {"scan", "forged_leaf", "validation"}) {
    SCOPED_TRACE(family);
    const std::string prefix = std::string("cache.") + family + ".";
    ASSERT_TRUE(snap.gauges.count(prefix + "lookups"));
    ASSERT_TRUE(snap.gauges.count(prefix + "hits"));
    ASSERT_TRUE(snap.gauges.count(prefix + "entries"));
    EXPECT_GT(snap.gauges.at(prefix + "lookups"), 0u);
    // Books balance: hits + misses == lookups.
    EXPECT_EQ(snap.gauges.at(prefix + "hits") + snap.gauges.at(prefix + "misses"),
              snap.gauges.at(prefix + "lookups"));
  }

  // The study corpus apps share SDK chains, so the validation memo must be warm —
  // the published hit-rate is real, not a zero numerator.
  EXPECT_GT(snap.gauges.at("cache.validation.hits"), 0u);

  // The gauges agree with the caches' own books, and the insert counter
  // matches what actually sits in the shards.
  ASSERT_NE(study.sim_fixtures(), nullptr);
  const x509::ValidationCache* cache = study.sim_fixtures()->validation_cache();
  ASSERT_NE(cache, nullptr);
  const x509::ValidationCacheStats stats = cache->Stats();
  EXPECT_EQ(snap.gauges.at("cache.validation.hits"), stats.hits);
  EXPECT_EQ(snap.gauges.at("cache.validation.inserts"), stats.inserts);
  EXPECT_EQ(cache->EntryCount(), stats.entries);

  // The same JSON the CLI writes for --metrics-out carries all of it.
  const std::string metrics_json = obs::WriteMetricsJson(snap);
  EXPECT_NE(metrics_json.find("\"cache.scan.hits\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"cache.forged_leaf.hits\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"cache.validation.hits\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"phase.static\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"phase.dynamic\""), std::string::npos);
}

TEST_P(ObsEquivalenceTest, TraceCoversStudyWorkersAndApps) {
  const store::Ecosystem& eco = pinscope::testing::MakeStudyCorpus(GetParam());
  obs::Observer observer;
  (void)RunStudy(eco, 4, &observer);

  const std::string trace = observer.trace().ToJson();
  EXPECT_NE(trace.find("\"study.run\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\": \"app\""), std::string::npos);
  EXPECT_NE(trace.find(".worker\""), std::string::npos);
  EXPECT_NE(trace.find("\"dynamic.mitm\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);

  // Re-running on the same observer appends; the sink is cumulative.
  const std::size_t after_first = observer.trace().EventCount();
  (void)RunStudy(eco, 1, &observer);
  EXPECT_GT(observer.trace().EventCount(), after_first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObsEquivalenceTest,
                         ::testing::Values(7u, 23u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pinscope::core

#include "appmodel/android_package.h"

#include <gtest/gtest.h>

#include "util/strings.h"
#include "x509/issuer.h"
#include "x509/pem.h"

namespace pinscope::appmodel {
namespace {

AppMetadata Meta() {
  AppMetadata meta;
  meta.app_id = "com.test.app";
  meta.display_name = "Test App";
  meta.platform = Platform::kAndroid;
  return meta;
}

x509::Certificate Cert() {
  x509::IssueSpec spec;
  spec.subject.set_common_name("apk.example.com");
  return x509::CertificateIssuer::SelfSignedLeaf("apk-cert", spec);
}

TEST(AndroidPackageTest, ManifestAlwaysPresent) {
  const PackageFiles apk = AndroidPackageBuilder(Meta()).Build();
  ASSERT_TRUE(apk.Contains("AndroidManifest.xml"));
  const std::string manifest = util::ToString(*apk.Find("AndroidManifest.xml"));
  EXPECT_TRUE(util::Contains(manifest, "com.test.app"));
  EXPECT_FALSE(util::Contains(manifest, "networkSecurityConfig"));
}

TEST(AndroidPackageTest, NscWiresManifestReference) {
  NscDomainConfig cfg;
  cfg.domain = "example.com";
  cfg.pin_strings = {"sha256/" + std::string(44, 'A')};
  const PackageFiles apk = AndroidPackageBuilder(Meta()).WithNsc({cfg}).Build();
  EXPECT_TRUE(util::Contains(util::ToString(*apk.Find("AndroidManifest.xml")),
                             "@xml/network_security_config"));
  ASSERT_TRUE(apk.Contains("res/xml/network_security_config.xml"));
  const std::string nsc =
      util::ToString(*apk.Find("res/xml/network_security_config.xml"));
  EXPECT_TRUE(util::Contains(nsc, "<pin digest=\"SHA-256\">"));
  EXPECT_TRUE(util::Contains(nsc, "example.com"));
}

TEST(AndroidPackageTest, NscRendersOverridePinsMisconfiguration) {
  NscDomainConfig cfg;
  cfg.domain = "example.com";
  cfg.pin_strings = {"sha256/" + std::string(44, 'B')};
  cfg.override_pins = true;
  const std::string xml = RenderNscXml({cfg});
  EXPECT_TRUE(util::Contains(xml, "overridePins=\"true\""));
}

TEST(AndroidPackageTest, SmaliPathEncodesCodeOrigin) {
  const PackageFiles apk =
      AndroidPackageBuilder(Meta())
          .AddSmaliString("com/twitter/sdk", "Pins.smali", "sha256/AAAA")
          .Build();
  ASSERT_TRUE(apk.Contains("smali/com/twitter/sdk/Pins.smali"));
  EXPECT_TRUE(util::Contains(
      util::ToString(*apk.Find("smali/com/twitter/sdk/Pins.smali")),
      "const-string"));
}

TEST(AndroidPackageTest, CertificateFilesUseRequestedFormat) {
  const x509::Certificate cert = Cert();
  const PackageFiles apk =
      AndroidPackageBuilder(Meta())
          .AddCertificateFile("res/raw", "pinned", cert, CertFileFormat::kPem)
          .AddCertificateFile("assets", "pinned", cert, CertFileFormat::kDer)
          .Build();
  ASSERT_TRUE(apk.Contains("res/raw/pinned.pem"));
  ASSERT_TRUE(apk.Contains("assets/pinned.der"));
  // PEM file decodes via PEM armor; DER parses directly.
  EXPECT_TRUE(
      x509::PemDecode(util::ToString(*apk.Find("res/raw/pinned.pem"))).has_value());
  EXPECT_TRUE(x509::Certificate::ParseDer(*apk.Find("assets/pinned.der")).has_value());
}

TEST(AndroidPackageTest, NativeLibEmbedsExtractableStrings) {
  util::Rng rng(1);
  const PackageFiles apk =
      AndroidPackageBuilder(Meta())
          .AddNativeLib("libpin.so", {"sha256/PINSTRING0000000000000000000"}, rng)
          .Build();
  ASSERT_TRUE(apk.Contains("lib/arm64-v8a/libpin.so"));
  const std::string blob = util::ToString(*apk.Find("lib/arm64-v8a/libpin.so"));
  EXPECT_TRUE(util::Contains(blob, "sha256/PINSTRING"));
}

TEST(AndroidPackageTest, BuilderRejectsIosMetadata) {
  AppMetadata meta = Meta();
  meta.platform = Platform::kIos;
  EXPECT_THROW(AndroidPackageBuilder{meta}, util::Error);
}

TEST(CertFileFormatTest, ExtensionsMatchPaperList) {
  EXPECT_EQ(CertFileExtension(CertFileFormat::kPem), ".pem");
  EXPECT_EQ(CertFileExtension(CertFileFormat::kDer), ".der");
  EXPECT_EQ(CertFileExtension(CertFileFormat::kCrt), ".crt");
  EXPECT_EQ(CertFileExtension(CertFileFormat::kCer), ".cer");
  EXPECT_EQ(CertFileExtension(CertFileFormat::kCert), ".cert");
}

}  // namespace
}  // namespace pinscope::appmodel

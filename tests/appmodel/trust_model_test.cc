#include "appmodel/trust_model.h"

#include <gtest/gtest.h>

#include "net/mitm_proxy.h"
#include "tls/handshake.h"
#include "util/rng.h"

namespace pinscope::appmodel {
namespace {

DeviceTrustState StockPixelWithUserProxyCa(const x509::Certificate& proxy_ca) {
  DeviceTrustState state;
  state.system_store = x509::PublicCaCatalog::Instance().AospStore();
  state.user_store = x509::RootStore("user", {proxy_ca});
  return state;
}

TEST(TrustModelTest, LegacyAndroidAppsTrustUserCas) {
  net::MitmProxy proxy;
  const auto state = StockPixelWithUserProxyCa(proxy.CaCertificate());
  const auto store = EffectiveAndroidTrustStore(state, /*target_sdk=*/23, false);
  EXPECT_TRUE(store.IsTrustedRoot(proxy.CaCertificate()));
}

TEST(TrustModelTest, ModernAndroidAppsIgnoreUserCas) {
  net::MitmProxy proxy;
  const auto state = StockPixelWithUserProxyCa(proxy.CaCertificate());
  const auto store = EffectiveAndroidTrustStore(state, /*target_sdk=*/30, false);
  EXPECT_FALSE(store.IsTrustedRoot(proxy.CaCertificate()));
  // System anchors survive.
  EXPECT_FALSE(store.roots().empty());
}

TEST(TrustModelTest, NscOptInRestoresUserTrust) {
  net::MitmProxy proxy;
  const auto state = StockPixelWithUserProxyCa(proxy.CaCertificate());
  const auto store =
      EffectiveAndroidTrustStore(state, /*target_sdk=*/30, /*nsc_trusts_user=*/true);
  EXPECT_TRUE(store.IsTrustedRoot(proxy.CaCertificate()));
}

TEST(TrustModelTest, IosAppsHonorUserTrustButServicesDoNot) {
  net::MitmProxy proxy;
  DeviceTrustState state;
  state.system_store = x509::PublicCaCatalog::Instance().IosStore();
  state.user_store = x509::RootStore("user", {proxy.CaCertificate()});

  EXPECT_TRUE(EffectiveIosTrustStore(state, /*os_service=*/false)
                  .IsTrustedRoot(proxy.CaCertificate()));
  EXPECT_FALSE(EffectiveIosTrustStore(state, /*os_service=*/true)
                   .IsTrustedRoot(proxy.CaCertificate()));
}

TEST(TrustModelTest, MergeDeduplicatesAnchors) {
  DeviceTrustState state;
  state.system_store = x509::PublicCaCatalog::Instance().AospStore();
  state.user_store =
      x509::RootStore("user", {state.system_store.roots().front()});
  const auto store = EffectiveAndroidTrustStore(state, 23, false);
  EXPECT_EQ(store.roots().size(), state.system_store.roots().size());
}

TEST(TrustModelTest, WhyThePaperModifiedTheFactoryImage) {
  // End-to-end: user-installed proxy CA cannot intercept a modern Android
  // app; a system-installed one can. This is §4.2.1's setup decision.
  net::MitmProxy proxy;
  const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.globaltrust");
  util::Rng rng(12);
  x509::IssueSpec spec;
  spec.subject.set_common_name("bank.trust.com");
  spec.san_dns = {"bank.trust.com"};
  spec.not_before = -util::kMillisPerDay;
  spec.not_after = util::kMillisPerYear;
  tls::ServerEndpoint server;
  server.hostname = "bank.trust.com";
  server.chain = {ca.Issue(spec, rng), ca.certificate()};

  const auto user_state = StockPixelWithUserProxyCa(proxy.CaCertificate());

  // Stock image, user-installed CA, modern app: interception fails.
  const auto user_store = EffectiveAndroidTrustStore(user_state, 30, false);
  tls::ClientTlsConfig client;
  client.root_store = &user_store;
  tls::AppPayload payload;
  payload.plaintext = "GET /";
  EXPECT_FALSE(proxy.Intercept(client, server, payload, 0, rng).decrypted);

  // Modified image: proxy CA in the *system* store — interception works.
  DeviceTrustState modified = user_state;
  modified.system_store.AddRoot(proxy.CaCertificate());
  modified.user_store = x509::RootStore("user", {});
  const auto sys_store = EffectiveAndroidTrustStore(modified, 30, false);
  client.root_store = &sys_store;
  EXPECT_TRUE(proxy.Intercept(client, server, payload, 0, rng).decrypted);
}

}  // namespace
}  // namespace pinscope::appmodel

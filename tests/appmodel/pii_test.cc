#include "appmodel/pii.h"

#include <gtest/gtest.h>

#include <set>

namespace pinscope::appmodel {
namespace {

DeviceIdentity TestDevice() {
  DeviceIdentity id;
  id.imei = "358240051111110";
  id.advertising_id = "cdda802e-fb9c-47ad-9866-0794d394c912";
  id.wifi_mac = "02:00:00:44:55:66";
  id.email = "tester@example.com";
  id.state = "Massachusetts";
  id.city = "Boston";
  id.lat_long = "42.3601,-71.0589";
  return id;
}

TEST(PiiTest, AllTypesHaveDistinctNamesAndPlaceholders) {
  std::set<std::string_view> names, placeholders;
  for (PiiType t : AllPiiTypes()) {
    EXPECT_TRUE(names.insert(PiiTypeName(t)).second);
    EXPECT_TRUE(placeholders.insert(PiiPlaceholder(t)).second);
  }
  EXPECT_EQ(AllPiiTypes().size(), 7u);
}

TEST(PiiTest, ExpandReplacesEveryPlaceholder) {
  const DeviceIdentity device = TestDevice();
  const std::string expanded = ExpandPiiTemplate(
      "id={{ad_id}}&imei={{imei}}&mac={{wifi_mac}}&e={{email}}"
      "&s={{state}}&c={{city}}&ll={{lat_long}}",
      device);
  for (PiiType t : AllPiiTypes()) {
    EXPECT_NE(expanded.find(device.Value(t)), std::string::npos)
        << PiiTypeName(t);
    EXPECT_EQ(expanded.find(PiiPlaceholder(t)), std::string::npos);
  }
}

TEST(PiiTest, ExpandLeavesUnknownPlaceholders) {
  EXPECT_EQ(ExpandPiiTemplate("x={{unknown}}", TestDevice()), "x={{unknown}}");
}

TEST(PiiTest, ExpandOfPlainTextIsIdentity) {
  EXPECT_EQ(ExpandPiiTemplate("no placeholders here", TestDevice()),
            "no placeholders here");
}

TEST(PiiTest, PiiInTemplateDetectsGroundTruth) {
  const auto found = PiiInTemplate("a={{ad_id}}&b={{city}}");
  EXPECT_EQ(found.size(), 2u);
  EXPECT_TRUE(PiiInTemplate("clean").empty());
}

class PiiValueAccess : public ::testing::TestWithParam<PiiType> {};

TEST_P(PiiValueAccess, ValueIsNonEmptyForTestDevice) {
  EXPECT_FALSE(TestDevice().Value(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(AllTypes, PiiValueAccess,
                         ::testing::ValuesIn(AllPiiTypes()));

}  // namespace
}  // namespace pinscope::appmodel

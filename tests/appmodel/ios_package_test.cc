#include "appmodel/ios_package.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace pinscope::appmodel {
namespace {

AppMetadata Meta() {
  AppMetadata meta;
  meta.app_id = "com.test.iosapp";
  meta.display_name = "My iOS App";
  meta.platform = Platform::kIos;
  return meta;
}

TEST(FairPlayTest, EncryptDecryptRoundTrips) {
  const util::Bytes plain = util::ToBytes("binary contents with pins");
  const util::Bytes cipher = FairPlayEncrypt(plain, "com.test.iosapp");
  EXPECT_TRUE(IsFairPlayEncrypted(cipher));
  EXPECT_EQ(FairPlayDecrypt(cipher, "com.test.iosapp"), plain);
}

TEST(FairPlayTest, CiphertextHidesPlaintext) {
  const util::Bytes plain = util::ToBytes("sha256/SECRETPINSTRING0000000000000");
  const util::Bytes cipher = FairPlayEncrypt(plain, "com.test.iosapp");
  EXPECT_FALSE(util::Contains(util::ToString(cipher), "SECRETPINSTRING"));
}

TEST(FairPlayTest, WrongBundleIdYieldsGarbage) {
  const util::Bytes plain = util::ToBytes("some content");
  const util::Bytes cipher = FairPlayEncrypt(plain, "com.correct.app");
  EXPECT_NE(FairPlayDecrypt(cipher, "com.wrong.app"), plain);
}

TEST(FairPlayTest, DecryptRejectsUnencryptedInput) {
  EXPECT_TRUE(FairPlayDecrypt(util::ToBytes("plain"), "com.test").empty());
  EXPECT_FALSE(IsFairPlayEncrypted(util::ToBytes("plain")));
}

TEST(IosPackageTest, BundleLayoutDerivedFromDisplayName) {
  IosPackageBuilder builder(Meta());
  EXPECT_EQ(builder.BundleRoot(), "Payload/MyIOSApp.app");
  EXPECT_EQ(builder.MainBinaryPath(), "Payload/MyIOSApp.app/MyIOSApp");
}

TEST(IosPackageTest, MainBinaryShipsEncrypted) {
  util::Rng rng(1);
  IosPackageBuilder builder(Meta());
  builder.AddMainBinaryString("sha256/MAINBINARYPIN0000000000000000");
  const PackageFiles ipa = builder.Build(rng);
  const util::Bytes* bin = ipa.Find(builder.MainBinaryPath());
  ASSERT_NE(bin, nullptr);
  EXPECT_TRUE(IsFairPlayEncrypted(*bin));
  EXPECT_FALSE(util::Contains(util::ToString(*bin), "MAINBINARYPIN"));
  // Decryption recovers the string.
  const util::Bytes plain = FairPlayDecrypt(*bin, "com.test.iosapp");
  EXPECT_TRUE(util::Contains(util::ToString(plain), "MAINBINARYPIN"));
}

TEST(IosPackageTest, FrameworksStayPlaintext) {
  util::Rng rng(2);
  IosPackageBuilder builder(Meta());
  builder.AddFrameworkStrings("TwitterKit", {"sha256/FRAMEWORKPIN00000000000000000"},
                              rng);
  const PackageFiles ipa = builder.Build(rng);
  const std::string path =
      "Payload/MyIOSApp.app/Frameworks/TwitterKit.framework/TwitterKit";
  ASSERT_TRUE(ipa.Contains(path));
  EXPECT_FALSE(IsFairPlayEncrypted(*ipa.Find(path)));
  EXPECT_TRUE(util::Contains(util::ToString(*ipa.Find(path)), "FRAMEWORKPIN"));
}

TEST(IosPackageTest, InfoPlistCarriesBundleIdAndAtsPins) {
  util::Rng rng(3);
  AtsPinnedDomain pinned;
  pinned.domain = "api.test.com";
  pinned.include_subdomains = true;
  pinned.spki_sha256_base64 = {std::string(44, 'C')};
  IosPackageBuilder builder(Meta());
  builder.WithAtsPinnedDomains({pinned});
  const PackageFiles ipa = builder.Build(rng);
  const std::string plist =
      util::ToString(*ipa.Find("Payload/MyIOSApp.app/Info.plist"));
  EXPECT_TRUE(util::Contains(plist, "com.test.iosapp"));
  EXPECT_TRUE(util::Contains(plist, "NSPinnedDomains"));
  EXPECT_TRUE(util::Contains(plist, "SPKI-SHA256-BASE64"));
  EXPECT_TRUE(util::Contains(plist, "api.test.com"));
}

TEST(IosPackageTest, EntitlementsCarryAssociatedDomains) {
  util::Rng rng(4);
  IosPackageBuilder builder(Meta());
  builder.WithAssociatedDomains({"test.com", "www.test.com"});
  const PackageFiles ipa = builder.Build(rng);
  const std::string ent =
      util::ToString(*ipa.Find("Payload/MyIOSApp.app/App.entitlements"));
  EXPECT_TRUE(util::Contains(ent, "applinks:test.com"));
  EXPECT_TRUE(util::Contains(ent, "applinks:www.test.com"));
  EXPECT_TRUE(util::Contains(ent, "com.apple.developer.associated-domains"));
}

TEST(IosPackageTest, BuilderRejectsAndroidMetadata) {
  AppMetadata meta = Meta();
  meta.platform = Platform::kAndroid;
  EXPECT_THROW(IosPackageBuilder{meta}, util::Error);
}

}  // namespace
}  // namespace pinscope::appmodel

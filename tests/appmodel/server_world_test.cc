#include "appmodel/server_world.h"

#include <gtest/gtest.h>

#include "util/hex.h"
#include "x509/validation.h"

namespace pinscope::appmodel {
namespace {

TEST(ServerWorldTest, DefaultPkiChainsValidateAgainstPublicStores) {
  ServerWorld world(1);
  const ServerInfo& info = world.EnsureDefaultPki("api.world.com", "world");
  EXPECT_EQ(info.pki, PkiType::kDefaultPki);
  ASSERT_EQ(info.endpoint.chain.size(), 3u);  // leaf, intermediate, root
  for (const auto& store : {x509::PublicCaCatalog::Instance().MozillaStore(),
                            x509::PublicCaCatalog::Instance().AospStore(),
                            x509::PublicCaCatalog::Instance().IosStore()}) {
    EXPECT_TRUE(x509::ChainsToPublicRoot(info.endpoint.chain, store))
        << store.name();
  }
  const auto result = x509::ValidateChain(
      info.endpoint.chain, "api.world.com", util::kStudyEpoch,
      x509::PublicCaCatalog::Instance().MozillaStore());
  EXPECT_TRUE(result.ok()) << x509::ValidationStatusName(result.status);
}

TEST(ServerWorldTest, EnsureIsIdempotent) {
  ServerWorld world(2);
  const ServerInfo& a = world.EnsureDefaultPki("api.same.com", "same");
  const ServerInfo& b = world.EnsureDefaultPki("api.same.com", "other-org");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(world.size(), 1u);
  EXPECT_EQ(b.organization, "same");  // first registration wins
}

TEST(ServerWorldTest, CustomPkiDoesNotChainToPublicRoots) {
  ServerWorld world(3);
  const ServerInfo& info = world.EnsureCustomPki("internal.corp.com", "corp");
  EXPECT_EQ(info.pki, PkiType::kCustomPki);
  EXPECT_FALSE(x509::ChainsToPublicRoot(
      info.endpoint.chain, x509::PublicCaCatalog::Instance().MozillaStore()));
  // But it validates against a store trusting its own root.
  x509::RootStore own("corp", {info.endpoint.chain.back()});
  EXPECT_TRUE(x509::ValidateChain(info.endpoint.chain, "internal.corp.com",
                                  util::kStudyEpoch, own)
                  .ok());
}

TEST(ServerWorldTest, SelfSignedHasRequestedValidity) {
  ServerWorld world(4);
  const ServerInfo& info = world.EnsureSelfSigned("legacy.corp.com", "corp", 27);
  EXPECT_EQ(info.pki, PkiType::kSelfSigned);
  ASSERT_EQ(info.endpoint.chain.size(), 1u);
  EXPECT_TRUE(info.endpoint.chain.front().IsSelfIssued());
  EXPECT_NEAR(static_cast<double>(info.endpoint.chain.front().ValidityDays()),
              27 * 365.0, 40.0);
}

TEST(ServerWorldTest, RotateLeafReusingKeyPreservesSpki) {
  ServerWorld world(5);
  const auto before = world.EnsureDefaultPki("rotate.me.com", "me").endpoint.chain;
  world.RotateLeaf("rotate.me.com", /*reuse_key=*/true);
  const auto after = world.Find("rotate.me.com")->endpoint.chain;
  EXPECT_NE(before.front().DerBytes(), after.front().DerBytes());
  EXPECT_EQ(before.front().SpkiSha256(), after.front().SpkiSha256());
}

TEST(ServerWorldTest, RotateLeafWithNewKeyChangesSpki) {
  ServerWorld world(6);
  const auto before = world.EnsureDefaultPki("rekey.me.com", "me").endpoint.chain;
  world.RotateLeaf("rekey.me.com", /*reuse_key=*/false);
  const auto after = world.Find("rekey.me.com")->endpoint.chain;
  EXPECT_NE(before.front().SpkiSha256(), after.front().SpkiSha256());
}

TEST(ServerWorldTest, RotateLeafRejectsUnknownAndSelfSigned) {
  ServerWorld world(7);
  EXPECT_THROW(world.RotateLeaf("nope.com", true), util::Error);
  world.EnsureSelfSigned("self.com", "self", 10);
  EXPECT_THROW(world.RotateLeaf("self.com", true), util::Error);
}

TEST(ServerWorldTest, DowngradeWeakensEndpoint) {
  ServerWorld world(8);
  world.EnsureDefaultPki("old.server.com", "old");
  world.Downgrade("old.server.com");
  const ServerInfo* info = world.Find("old.server.com");
  EXPECT_EQ(info->endpoint.max_version, tls::TlsVersion::kTls12);
  EXPECT_TRUE(tls::AdvertisesWeakCipher(info->endpoint.ciphers));
}

TEST(ServerWorldTest, ExportOwnershipRegistersRegistrableDomains) {
  ServerWorld world(9);
  world.EnsureDefaultPki("api.owned.com", "owner-org");
  net::OrganizationDirectory dir;
  world.ExportOwnership(dir);
  EXPECT_EQ(dir.OwnerOf("other.owned.com"), "owner-org");
}

TEST(ServerWorldTest, CtLogContainsOnlyPublicChains) {
  ServerWorld world(10);
  world.EnsureDefaultPki("public.site.com", "pub");
  world.EnsureCustomPki("private.corp.com", "corp");
  x509::CtLog log;
  world.ExportToCtLog(log);
  const auto* pub = world.Find("public.site.com");
  const auto* priv = world.Find("private.corp.com");
  const auto pub_digest = pub->endpoint.chain.front().SpkiSha256();
  const auto priv_digest = priv->endpoint.chain.front().SpkiSha256();
  EXPECT_FALSE(log.FindBySpkiDigest(
                      util::HexEncode(util::Bytes(pub_digest.begin(), pub_digest.end())))
                   .empty());
  EXPECT_TRUE(log.FindBySpkiDigest(util::HexEncode(
                                       util::Bytes(priv_digest.begin(), priv_digest.end())))
                  .empty());
}

TEST(ServerWorldTest, ChainFetchUnavailableFlag) {
  ServerWorld world(11);
  world.EnsureDefaultPki("flaky.site.com", "flaky");
  EXPECT_FALSE(world.Find("flaky.site.com")->chain_fetch_unavailable);
  world.MarkChainFetchUnavailable("flaky.site.com");
  EXPECT_TRUE(world.Find("flaky.site.com")->chain_fetch_unavailable);
  EXPECT_THROW(world.MarkChainFetchUnavailable("unknown.com"), util::Error);
}

}  // namespace
}  // namespace pinscope::appmodel

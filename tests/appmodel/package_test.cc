#include "appmodel/package.h"

#include <gtest/gtest.h>

namespace pinscope::appmodel {
namespace {

TEST(PackageFilesTest, AddAndFind) {
  PackageFiles files;
  files.AddText("a/b.txt", "hello");
  ASSERT_NE(files.Find("a/b.txt"), nullptr);
  EXPECT_EQ(util::ToString(*files.Find("a/b.txt")), "hello");
  EXPECT_EQ(files.Find("missing"), nullptr);
  EXPECT_TRUE(files.Contains("a/b.txt"));
  EXPECT_FALSE(files.Contains("a"));
}

TEST(PackageFilesTest, AddReplacesExisting) {
  PackageFiles files;
  files.AddText("f", "one");
  files.AddText("f", "two");
  EXPECT_EQ(files.size(), 1u);
  EXPECT_EQ(util::ToString(*files.Find("f")), "two");
}

TEST(PackageFilesTest, PathsWithSuffixIsCaseInsensitive) {
  PackageFiles files;
  files.AddText("certs/ca.PEM", "x");
  files.AddText("certs/ca.pem", "x");
  files.AddText("certs/ca.der", "x");
  files.AddText("readme.md", "x");
  EXPECT_EQ(files.PathsWithSuffix(".pem").size(), 2u);
  EXPECT_EQ(files.PathsWithSuffix(".der").size(), 1u);
  EXPECT_TRUE(files.PathsWithSuffix(".cer").empty());
}

TEST(PackageFilesTest, TotalBytes) {
  PackageFiles files;
  files.AddText("a", "12345");
  files.AddText("b", "123");
  EXPECT_EQ(files.TotalBytes(), 8u);
}

}  // namespace
}  // namespace pinscope::appmodel

// Unit tests for the corpus-wide scan cache: hit/miss accounting, path
// rebinding on hit, cert-file-flag keying, first-insert-wins semantics, and
// a concurrent smoke test (TSan-covered via the `static` ctest label).
#include "staticanalysis/scan_cache.h"

#include <gtest/gtest.h>

#include "appmodel/android_package.h"
#include "staticanalysis/scanner.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "x509/issuer.h"
#include "x509/pem.h"

namespace pinscope::staticanalysis {
namespace {

x509::Certificate TestCert(const std::string& cn) {
  x509::IssueSpec spec;
  spec.subject.set_common_name(cn);
  return x509::CertificateIssuer::SelfSignedLeaf("cache:" + cn, spec);
}

std::string TestPinString(const x509::Certificate& cert) {
  return tls::Pin::ForCertificate(cert, tls::PinForm::kSpkiSha256).ToPinString();
}

// Field-by-field equality of two scan results (paths, pins, certificates,
// counters — everything except the cache diagnostics).
void ExpectSameScan(const ScanResult& a, const ScanResult& b) {
  EXPECT_EQ(a.files_scanned, b.files_scanned);
  EXPECT_EQ(a.bytes_scanned, b.bytes_scanned);
  ASSERT_EQ(a.certificates.size(), b.certificates.size());
  for (std::size_t i = 0; i < a.certificates.size(); ++i) {
    EXPECT_EQ(a.certificates[i].path, b.certificates[i].path) << i;
    EXPECT_EQ(a.certificates[i].cert, b.certificates[i].cert) << i;
    EXPECT_EQ(a.certificates[i].from_pem, b.certificates[i].from_pem) << i;
  }
  ASSERT_EQ(a.pins.size(), b.pins.size());
  for (std::size_t i = 0; i < a.pins.size(); ++i) {
    EXPECT_EQ(a.pins[i].path, b.pins[i].path) << i;
    EXPECT_EQ(a.pins[i].pin_string, b.pins[i].pin_string) << i;
    EXPECT_EQ(a.pins[i].parsed.has_value(), b.pins[i].parsed.has_value()) << i;
  }
}

// A package exercising every scan branch: PEM asset, DER cert file, pin in
// smali text, pin in a binary lib, unparseable cert file, clean files.
appmodel::PackageFiles MixedPackage(const std::string& salt) {
  const x509::Certificate pem_cert = TestCert("pem." + salt + ".com");
  const x509::Certificate der_cert = TestCert("der." + salt + ".com");
  const std::string pin = TestPinString(TestCert("pin." + salt + ".com"));
  util::Rng rng(7);
  appmodel::PackageFiles files;
  files.AddText("assets/certs/server.pem", x509::PemEncode(pem_cert));
  files.Add("res/raw/ca.der", der_cert.DerBytes());
  files.AddText("smali/com/vendor/Pins.smali",
                "const-string v0, \"" + pin + "\"");
  files.Add("lib/arm64-v8a/libnet.so",
            appmodel::RenderBinaryWithStrings({pin, "https://" + salt + ".com"}, rng));
  files.AddText("broken.pem", "-----BEGIN CERTIFICATE-----\nnot base64\n"
                              "-----END CERTIFICATE-----");
  files.AddText("assets/config.json", "{\"api\": \"https://api." + salt + ".com\"}");
  return files;
}

TEST(ScanCacheTest, CachedScanIsIdenticalToUncached) {
  const appmodel::PackageFiles files = MixedPackage("equiv");
  const Scanner scanner;
  const ScanResult uncached = scanner.Scan(files);
  ScanCache cache;
  const ScanResult cold = scanner.Scan(files, &cache);
  const ScanResult warm = scanner.Scan(files, &cache);
  ExpectSameScan(uncached, cold);
  ExpectSameScan(uncached, warm);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(warm.cache_hits, files.size());
  EXPECT_EQ(warm.cache_bytes_deduped, files.TotalBytes());
}

TEST(ScanCacheTest, HitMissAccounting) {
  const Scanner scanner;
  const std::string pin = TestPinString(TestCert("acct.com"));
  appmodel::PackageFiles app1;
  app1.AddText("smali/shared/Sdk.smali", "const-string v0, \"" + pin + "\"");
  app1.AddText("assets/unique1.txt", "only in app one");
  appmodel::PackageFiles app2;
  app2.AddText("smali/other/path/Sdk.smali", "const-string v0, \"" + pin + "\"");
  app2.AddText("assets/unique2.txt", "only in app two");

  ScanCache cache;
  const ScanResult r1 = scanner.Scan(app1, &cache);
  EXPECT_EQ(r1.cache_hits, 0u);
  const ScanResult r2 = scanner.Scan(app2, &cache);
  EXPECT_EQ(r2.cache_hits, 1u);  // the shared SDK smali

  const ScanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.lookups, 4u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes_deduped, app2.Find("smali/other/path/Sdk.smali")->size());
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

TEST(ScanCacheTest, HitRebindsPathsToTheObservingFile) {
  const Scanner scanner;
  const std::string pin = TestPinString(TestCert("rebind.com"));
  const std::string content = "const-string v0, \"" + pin + "\"";
  appmodel::PackageFiles app1;
  app1.AddText("a/App1Sdk.smali", content);
  appmodel::PackageFiles app2;
  app2.AddText("b/App2Sdk.smali", content);

  ScanCache cache;
  const ScanResult r1 = scanner.Scan(app1, &cache);
  const ScanResult r2 = scanner.Scan(app2, &cache);
  ASSERT_EQ(r1.pins.size(), 1u);
  ASSERT_EQ(r2.pins.size(), 1u);
  EXPECT_EQ(r1.pins[0].path, "a/App1Sdk.smali");
  EXPECT_EQ(r2.pins[0].path, "b/App2Sdk.smali");  // hit, path rebound
  EXPECT_EQ(r2.cache_hits, 1u);
}

TEST(ScanCacheTest, CertFileFlagIsPartOfTheKey) {
  // The same DER bytes scan differently depending on the path suffix: as
  // "ca.der" the cert-file branch parses a certificate; as "ca.bin" the
  // content is binary noise with no printable pin. One content hash must
  // not alias the two outcomes.
  const x509::Certificate cert = TestCert("flag.com");
  appmodel::PackageFiles files;
  files.Add("res/raw/ca.der", cert.DerBytes());
  files.Add("res/raw/ca.bin", cert.DerBytes());

  const Scanner scanner;
  const ScanResult uncached = scanner.Scan(files);
  ScanCache cache;
  const ScanResult cached = scanner.Scan(files, &cache);
  ExpectSameScan(uncached, cached);
  ASSERT_EQ(cached.certificates.size(), 1u);
  EXPECT_EQ(cached.certificates[0].path, "res/raw/ca.der");
  EXPECT_EQ(cached.cache_hits, 0u);  // distinct keys, no aliasing
  EXPECT_EQ(cache.Stats().entries, 2u);
}

TEST(ScanCacheTest, SuffixMatchIsCaseInsensitive) {
  const x509::Certificate cert = TestCert("case.com");
  appmodel::PackageFiles files;
  files.Add("res/raw/CA.DER", cert.DerBytes());
  const ScanResult result = Scanner().Scan(files);
  ASSERT_EQ(result.certificates.size(), 1u);
  EXPECT_FALSE(result.certificates[0].from_pem);
  EXPECT_TRUE(HasCertFileSuffix("UPPER.PEM"));
  EXPECT_TRUE(HasCertFileSuffix("mixed.CrT"));
  EXPECT_FALSE(HasCertFileSuffix("not-a-cert.txt"));
}

TEST(ScanCacheTest, InsertIsFirstWins) {
  ScanCache cache;
  const util::Bytes content = util::ToBytes("some scanned content");
  const ScanCache::Key key = ScanCache::MakeKey(content, false);
  EXPECT_EQ(cache.Find(key, content.size()), nullptr);

  CachedFileScan scan;
  scan.pins.push_back({"", "sha256/first", std::nullopt});
  const auto first = cache.Insert(key, std::move(scan));
  CachedFileScan again;
  again.pins.push_back({"", "sha256/first", std::nullopt});
  const auto second = cache.Insert(key, std::move(again));
  EXPECT_EQ(first.get(), second.get());  // resident entry returned both times
  EXPECT_EQ(cache.Stats().entries, 1u);

  const auto found = cache.Find(key, content.size());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), first.get());
}

TEST(ScanCacheTest, ConcurrentSharedCacheScansAreIdentical) {
  // Many workers scanning overlapping packages through one cache: every
  // result must equal the uncached reference. Runs under TSan via the
  // `static`-labeled suite to prove the sharded map race-free.
  const Scanner scanner;
  std::vector<appmodel::PackageFiles> apps;
  for (int i = 0; i < 8; ++i) {
    // Pairs of apps share content ("dup0", "dup1", ...) to force cross-app
    // hits while unique files force misses.
    apps.push_back(MixedPackage("dup" + std::to_string(i / 2)));
  }
  std::vector<ScanResult> reference;
  reference.reserve(apps.size());
  for (const auto& app : apps) reference.push_back(scanner.Scan(app));

  ScanCache cache;
  std::vector<ScanResult> concurrent(apps.size());
  util::ParallelOptions par;
  par.threads = 8;
  util::ParallelFor(
      apps.size(),
      [&](std::size_t i) { concurrent[i] = scanner.Scan(apps[i], &cache); }, par);

  for (std::size_t i = 0; i < apps.size(); ++i) {
    SCOPED_TRACE("app " + std::to_string(i));
    ExpectSameScan(reference[i], concurrent[i]);
  }
  const ScanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_LE(stats.entries, stats.lookups);
}

}  // namespace
}  // namespace pinscope::staticanalysis

#include "staticanalysis/nsc_analyzer.h"

#include <gtest/gtest.h>

#include "appmodel/android_package.h"
#include "tls/pinning.h"
#include "util/base64.h"

namespace pinscope::staticanalysis {
namespace {

appmodel::AppMetadata Meta() {
  appmodel::AppMetadata meta;
  meta.app_id = "com.nsc.app";
  meta.display_name = "NSC App";
  meta.platform = appmodel::Platform::kAndroid;
  return meta;
}

std::string ValidPin256() {
  return "sha256/" + util::Base64Encode(util::Bytes(32, 0x42));
}

TEST(NscAnalyzerTest, NoManifestNoNsc) {
  appmodel::PackageFiles empty;
  const NscAnalysis result = AnalyzeNsc(empty);
  EXPECT_FALSE(result.has_manifest);
  EXPECT_FALSE(result.uses_nsc);
}

TEST(NscAnalyzerTest, ManifestWithoutNscReference) {
  const auto apk = appmodel::AndroidPackageBuilder(Meta()).Build();
  const NscAnalysis result = AnalyzeNsc(apk);
  EXPECT_TRUE(result.has_manifest);
  EXPECT_FALSE(result.uses_nsc);
  EXPECT_FALSE(result.PinsViaNsc());
}

TEST(NscAnalyzerTest, ParsesPinSets) {
  appmodel::NscDomainConfig cfg;
  cfg.domain = "api.nsc.com";
  cfg.include_subdomains = true;
  cfg.pin_strings = {ValidPin256()};
  cfg.pin_expiration = "2022-06-01";
  const auto apk = appmodel::AndroidPackageBuilder(Meta()).WithNsc({cfg}).Build();

  const NscAnalysis result = AnalyzeNsc(apk);
  EXPECT_TRUE(result.uses_nsc);
  EXPECT_TRUE(result.nsc_file_found);
  ASSERT_EQ(result.domains.size(), 1u);
  EXPECT_EQ(result.domains[0].domain, "api.nsc.com");
  EXPECT_TRUE(result.domains[0].include_subdomains);
  EXPECT_EQ(result.domains[0].pin_expiration, "2022-06-01");
  ASSERT_EQ(result.domains[0].parsed_pins.size(), 1u);
  EXPECT_EQ(result.domains[0].parsed_pins[0].form, tls::PinForm::kSpkiSha256);
  EXPECT_TRUE(result.PinsViaNsc());
}

TEST(NscAnalyzerTest, ParsesSha1Pins) {
  appmodel::NscDomainConfig cfg;
  cfg.domain = "legacy.nsc.com";
  cfg.pin_strings = {"sha1/" + util::Base64Encode(util::Bytes(20, 0x41))};
  const auto apk = appmodel::AndroidPackageBuilder(Meta()).WithNsc({cfg}).Build();
  const NscAnalysis result = AnalyzeNsc(apk);
  ASSERT_EQ(result.domains[0].parsed_pins.size(), 1u);
  EXPECT_EQ(result.domains[0].parsed_pins[0].form, tls::PinForm::kSpkiSha1);
}

TEST(NscAnalyzerTest, NscWithoutPinsIsNotPinning) {
  appmodel::NscDomainConfig cfg;
  cfg.domain = "plain.nsc.com";
  const auto apk = appmodel::AndroidPackageBuilder(Meta()).WithNsc({cfg}).Build();
  const NscAnalysis result = AnalyzeNsc(apk);
  EXPECT_TRUE(result.uses_nsc);
  EXPECT_FALSE(result.PinsViaNsc());
}

TEST(NscAnalyzerTest, FlagsOverridePinsMisconfiguration) {
  // The Possemato et al. case: pins present but neutralized.
  appmodel::NscDomainConfig cfg;
  cfg.domain = "oops.nsc.com";
  cfg.pin_strings = {ValidPin256()};
  cfg.override_pins = true;
  const auto apk = appmodel::AndroidPackageBuilder(Meta()).WithNsc({cfg}).Build();
  const NscAnalysis result = AnalyzeNsc(apk);
  EXPECT_EQ(result.MisconfiguredDomains(),
            std::vector<std::string>{"oops.nsc.com"});
}

TEST(NscAnalyzerTest, MalformedPinBodiesAreSkippedNotFatal) {
  appmodel::PackageFiles apk = appmodel::AndroidPackageBuilder(Meta()).Build();
  // Hand-write a manifest + NSC with a bogus pin body.
  apk.AddText("AndroidManifest.xml",
              "<manifest package=\"com.nsc.app\">"
              "<application android:networkSecurityConfig=\"@xml/network_security_config\">"
              "</application></manifest>");
  apk.AddText("res/xml/network_security_config.xml",
              "<network-security-config><domain-config>"
              "<domain includeSubdomains=\"false\">x.com</domain>"
              "<pin-set><pin digest=\"SHA-256\">!!!bad!!!</pin></pin-set>"
              "</domain-config></network-security-config>");
  const NscAnalysis result = AnalyzeNsc(apk);
  EXPECT_TRUE(result.nsc_file_found);
  ASSERT_EQ(result.domains.size(), 1u);
  EXPECT_EQ(result.domains[0].pin_strings.size(), 1u);
  EXPECT_TRUE(result.domains[0].parsed_pins.empty());
  EXPECT_FALSE(result.PinsViaNsc());
}

TEST(NscAnalyzerTest, MissingNscFileReportedAsNotFound) {
  appmodel::PackageFiles apk;
  apk.AddText("AndroidManifest.xml",
              "<manifest package=\"com.nsc.app\">"
              "<application android:networkSecurityConfig=\"@xml/missing\">"
              "</application></manifest>");
  const NscAnalysis result = AnalyzeNsc(apk);
  EXPECT_TRUE(result.uses_nsc);
  EXPECT_FALSE(result.nsc_file_found);
}

TEST(NscAnalyzerTest, CorruptManifestIsNotFatal) {
  appmodel::PackageFiles apk;
  apk.AddText("AndroidManifest.xml", "<manifest><unclosed>");
  const NscAnalysis result = AnalyzeNsc(apk);
  EXPECT_TRUE(result.has_manifest);
  EXPECT_FALSE(result.uses_nsc);
}

}  // namespace
}  // namespace pinscope::staticanalysis

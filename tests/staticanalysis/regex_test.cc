#include "staticanalysis/regex.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace pinscope::staticanalysis {
namespace {

TEST(RegexTest, LiteralMatching) {
  Regex re("abc");
  EXPECT_TRUE(re.Search("xxabcxx"));
  EXPECT_FALSE(re.Search("ab"));
  EXPECT_FALSE(re.Search(""));
}

TEST(RegexTest, DotMatchesAnyChar) {
  Regex re("a.c");
  EXPECT_TRUE(re.Search("abc"));
  EXPECT_TRUE(re.Search("a.c"));
  EXPECT_FALSE(re.Search("ac"));
}

TEST(RegexTest, CharacterClasses) {
  Regex re("[a-c][0-9]");
  EXPECT_TRUE(re.Search("b7"));
  EXPECT_FALSE(re.Search("d7"));
  EXPECT_FALSE(re.Search("bx"));
}

TEST(RegexTest, NegatedClass) {
  Regex re("[^0-9]+");
  EXPECT_TRUE(re.Search("abc"));
  EXPECT_FALSE(re.Search("123"));
}

TEST(RegexTest, Alternation) {
  Regex re("sha(1|256)");
  EXPECT_TRUE(re.Search("sha1"));
  EXPECT_TRUE(re.Search("sha256"));
  EXPECT_FALSE(re.Search("sha512x"));  // matches "sha" prefix? no: needs 1|256
}

TEST(RegexTest, Quantifiers) {
  EXPECT_TRUE(Regex("ab*c").Search("ac"));
  EXPECT_TRUE(Regex("ab*c").Search("abbbc"));
  EXPECT_FALSE(Regex("ab+c").Search("ac"));
  EXPECT_TRUE(Regex("ab+c").Search("abc"));
  EXPECT_TRUE(Regex("ab?c").Search("ac"));
  EXPECT_TRUE(Regex("ab?c").Search("abc"));
  EXPECT_FALSE(Regex("ab?c").Search("abbc"));
}

TEST(RegexTest, BoundedQuantifiers) {
  Regex re("a{2,4}");
  EXPECT_FALSE(re.Search("a"));
  EXPECT_TRUE(re.Search("aa"));
  std::size_t len = 0;
  EXPECT_TRUE(re.MatchAt("aaaaa", 0, &len));
  EXPECT_EQ(len, 4u);  // greedy, capped at 4
}

TEST(RegexTest, ExactCountQuantifier) {
  Regex re("x{3}");
  EXPECT_FALSE(re.Search("xx"));
  EXPECT_TRUE(re.Search("xxx"));
}

TEST(RegexTest, EscapedMetacharacters) {
  Regex re("a\\.b\\+");
  EXPECT_TRUE(re.Search("a.b+"));
  EXPECT_FALSE(re.Search("axb+"));
}

TEST(RegexTest, ThePaperPinPattern) {
  Regex re("sha(1|256)/[a-zA-Z0-9+/=]{28,64}");
  const std::string sha256_pin =
      "sha256/AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA=";
  const std::string sha1_pin = "sha1/BBBBBBBBBBBBBBBBBBBBBBBBBBB=";
  EXPECT_TRUE(re.Search("pin: " + sha256_pin));
  EXPECT_TRUE(re.Search(sha1_pin));
  EXPECT_FALSE(re.Search("sha256/short"));
  EXPECT_FALSE(re.Search("md5/AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"));

  const auto matches = re.FindAll("a " + sha256_pin + " b " + sha1_pin);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].text, sha256_pin);
  EXPECT_EQ(matches[1].text, sha1_pin);
}

TEST(RegexTest, PinPatternAlsoMatchesHexDigests) {
  // The paper's 28-64 length window covers hex-encoded SHA-1 (40) and
  // SHA-256 (64) digests too.
  Regex re("sha(1|256)/[a-zA-Z0-9+/=]{28,64}");
  EXPECT_TRUE(re.Search("sha256/" + std::string(64, 'a')));
  EXPECT_TRUE(re.Search("sha1/" + std::string(40, '0')));
}

TEST(RegexTest, FindAllIsNonOverlapping) {
  Regex re("aa");
  const auto matches = re.FindAll("aaaa");
  EXPECT_EQ(matches.size(), 2u);
}

TEST(RegexTest, FindAllReportsPositions) {
  Regex re("b+");
  const auto matches = re.FindAll("abba b");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].position, 1u);
  EXPECT_EQ(matches[0].text, "bb");
  EXPECT_EQ(matches[1].position, 5u);
}

TEST(RegexTest, LiteralPrefixExtraction) {
  EXPECT_EQ(Regex("sha(1|256)/x").literal_prefix(), "sha");
  EXPECT_EQ(Regex("abc").literal_prefix(), "abc");
  EXPECT_EQ(Regex("[ab]c").literal_prefix(), "");
  EXPECT_EQ(Regex("a|b").literal_prefix(), "");
  EXPECT_EQ(Regex("ab*").literal_prefix(), "a");
}

TEST(RegexTest, GroupsNestAndQuantify) {
  Regex re("(ab)+c");
  EXPECT_TRUE(re.Search("ababc"));
  EXPECT_FALSE(re.Search("c"));
  Regex nested("a((b|c)d)*e");
  EXPECT_TRUE(nested.Search("abdcde"));
  EXPECT_TRUE(nested.Search("ae"));
}

TEST(RegexTest, InvalidPatternsThrow) {
  EXPECT_THROW(Regex("(unclosed"), util::ParseError);
  EXPECT_THROW(Regex("[unclosed"), util::ParseError);
  EXPECT_THROW(Regex("a{5,2}"), util::ParseError);
  EXPECT_THROW(Regex("*nothing"), util::ParseError);
  EXPECT_THROW(Regex("a{x}"), util::ParseError);
  EXPECT_THROW(Regex("closed)"), util::ParseError);
}

TEST(RegexTest, EmptyPatternMatchesEverywhere) {
  Regex re("");
  EXPECT_TRUE(re.Search(""));
  EXPECT_TRUE(re.Search("anything"));
}

TEST(RegexTest, MatchAtHonorsPosition) {
  Regex re("bc");
  EXPECT_FALSE(re.MatchAt("abc", 0));
  EXPECT_TRUE(re.MatchAt("abc", 1));
}

}  // namespace
}  // namespace pinscope::staticanalysis

#include "staticanalysis/ios_decrypt.h"

#include <gtest/gtest.h>

#include "appmodel/ios_package.h"
#include "util/rng.h"
#include "util/strings.h"

namespace pinscope::staticanalysis {
namespace {

appmodel::AppMetadata Meta() {
  appmodel::AppMetadata meta;
  meta.app_id = "com.decrypt.app";
  meta.display_name = "Decrypt Me";
  meta.platform = appmodel::Platform::kIos;
  return meta;
}

appmodel::PackageFiles BuildIpa() {
  util::Rng rng(1);
  appmodel::IosPackageBuilder builder(Meta());
  builder.AddMainBinaryString("sha256/ENCRYPTEDPIN00000000000000000");
  return builder.Build(rng);
}

TEST(DecryptTest, FlexdecryptRecoversMainBinary) {
  const auto ipa = BuildIpa();
  const DecryptResult result =
      DecryptIpa(ipa, "com.decrypt.app", DecryptionDevice{}, DecryptTool::kFlexdecrypt);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.launched_app);
  const util::Bytes* bin = result.files.Find("Payload/DecryptMe.app/DecryptMe");
  ASSERT_NE(bin, nullptr);
  EXPECT_FALSE(appmodel::IsFairPlayEncrypted(*bin));
  EXPECT_TRUE(util::Contains(util::ToString(*bin), "ENCRYPTEDPIN"));
}

TEST(DecryptTest, FridaIosDumpLaunchesAppAndCostsMore) {
  const auto ipa = BuildIpa();
  const auto flex =
      DecryptIpa(ipa, "com.decrypt.app", DecryptionDevice{}, DecryptTool::kFlexdecrypt);
  const auto frida =
      DecryptIpa(ipa, "com.decrypt.app", DecryptionDevice{}, DecryptTool::kFridaIosDump);
  ASSERT_TRUE(frida.ok);
  EXPECT_TRUE(frida.launched_app);
  // The paper chose Flexdecrypt for being faster; the cost model agrees.
  EXPECT_GT(frida.cost_ms, flex.cost_ms);
}

TEST(DecryptTest, RequiresJailbrokenDevice) {
  DecryptionDevice stock;
  stock.jailbroken = false;
  const auto result = DecryptIpa(BuildIpa(), "com.decrypt.app", stock);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(DecryptTest, PassesPlaintextFilesThrough) {
  const auto ipa = BuildIpa();
  const auto result = DecryptIpa(ipa, "com.decrypt.app", DecryptionDevice{});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.files.size(), ipa.size());
  EXPECT_NE(result.files.Find("Payload/DecryptMe.app/Info.plist"), nullptr);
}

}  // namespace
}  // namespace pinscope::staticanalysis

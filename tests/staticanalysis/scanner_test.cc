#include "staticanalysis/scanner.h"

#include <gtest/gtest.h>

#include "appmodel/android_package.h"
#include "util/rng.h"
#include "x509/issuer.h"
#include "x509/pem.h"

namespace pinscope::staticanalysis {
namespace {

x509::Certificate TestCert(const std::string& cn) {
  x509::IssueSpec spec;
  spec.subject.set_common_name(cn);
  return x509::CertificateIssuer::SelfSignedLeaf("scan:" + cn, spec);
}

std::string TestPinString(const x509::Certificate& cert) {
  return tls::Pin::ForCertificate(cert, tls::PinForm::kSpkiSha256).ToPinString();
}

TEST(ExtractStringsTest, FindsPrintableRuns) {
  util::Bytes blob = {0x01, 0x02};
  util::Append(blob, "hello-world-string");
  blob.push_back(0x00);
  blob.push_back(0x03);
  util::Append(blob, "tiny");  // below the default minimum length
  const auto strings = ExtractStrings(blob);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "hello-world-string");
}

TEST(ExtractStringsTest, RespectsMinimumLength) {
  util::Bytes blob = util::ToBytes("abc");
  EXPECT_TRUE(ExtractStrings(blob, 4).empty());
  EXPECT_EQ(ExtractStrings(blob, 3).size(), 1u);
}

TEST(ScannerTest, FindsPemCertificateInTextAsset) {
  const x509::Certificate cert = TestCert("pem.scan.com");
  appmodel::PackageFiles files;
  files.AddText("assets/certs/server.pem", x509::PemEncode(cert));
  const ScanResult result = Scanner().Scan(files);
  ASSERT_EQ(result.certificates.size(), 1u);
  EXPECT_EQ(result.certificates[0].cert, cert);
  EXPECT_EQ(result.certificates[0].path, "assets/certs/server.pem");
  EXPECT_TRUE(result.HasPinningEvidence());
}

TEST(ScannerTest, FindsDerCertificateByExtension) {
  const x509::Certificate cert = TestCert("der.scan.com");
  appmodel::PackageFiles files;
  files.Add("res/raw/ca.der", cert.DerBytes());
  const ScanResult result = Scanner().Scan(files);
  ASSERT_EQ(result.certificates.size(), 1u);
  EXPECT_FALSE(result.certificates[0].from_pem);
}

TEST(ScannerTest, FindsEveryPaperExtension) {
  const x509::Certificate cert = TestCert("ext.scan.com");
  appmodel::PackageFiles files;
  for (const std::string& suffix : CertFileSuffixes()) {
    files.Add("certs/c" + suffix, cert.DerBytes());
  }
  EXPECT_EQ(Scanner().Scan(files).certificates.size(), CertFileSuffixes().size());
}

TEST(ScannerTest, FindsPinHashInSmaliText) {
  const std::string pin = TestPinString(TestCert("pin.scan.com"));
  appmodel::PackageFiles files;
  files.AddText("smali/com/vendor/Pins.smali", "const-string v0, \"" + pin + "\"");
  const ScanResult result = Scanner().Scan(files);
  ASSERT_EQ(result.pins.size(), 1u);
  EXPECT_EQ(result.pins[0].pin_string, pin);
  ASSERT_TRUE(result.pins[0].parsed.has_value());
}

TEST(ScannerTest, FindsPinInsideBinaryViaStringExtraction) {
  const std::string pin = TestPinString(TestCert("bin.scan.com"));
  util::Rng rng(5);
  appmodel::PackageFiles files;
  files.Add("lib/arm64-v8a/libnet.so",
            appmodel::RenderBinaryWithStrings({pin, "https://x.com"}, rng));
  const ScanResult result = Scanner().Scan(files);
  ASSERT_EQ(result.pins.size(), 1u);
  EXPECT_EQ(result.pins[0].pin_string, pin);
}

TEST(ScannerTest, MalformedPinIsReportedUnparsed) {
  appmodel::PackageFiles files;
  // Right shape for the regex, wrong digest length for a real pin.
  files.AddText("notes.txt", "sha256/" + std::string(30, 'A'));
  const ScanResult result = Scanner().Scan(files);
  ASSERT_EQ(result.pins.size(), 1u);
  EXPECT_FALSE(result.pins[0].parsed.has_value());
  EXPECT_FALSE(result.HasPinningEvidence());
}

TEST(ScannerTest, CleanPackageHasNoEvidence) {
  appmodel::PackageFiles files;
  files.AddText("assets/config.json", "{\"api\": \"https://api.x.com\"}");
  files.AddText("smali/com/app/Main.smali", "const-string v0, \"hello\"");
  const ScanResult result = Scanner().Scan(files);
  EXPECT_TRUE(result.certificates.empty());
  EXPECT_TRUE(result.pins.empty());
  EXPECT_FALSE(result.HasPinningEvidence());
  EXPECT_EQ(result.files_scanned, 2u);
}

TEST(ScannerTest, CorruptCertFileFallsThroughGracefully) {
  appmodel::PackageFiles files;
  files.AddText("broken.pem", "-----BEGIN CERTIFICATE-----\nnot base64\n"
                              "-----END CERTIFICATE-----");
  const ScanResult result = Scanner().Scan(files);
  EXPECT_TRUE(result.certificates.empty());
}

TEST(ScannerTest, CountsBytesScanned) {
  appmodel::PackageFiles files;
  files.AddText("a.txt", "12345");
  const ScanResult result = Scanner().Scan(files);
  EXPECT_EQ(result.bytes_scanned, 5u);
}

}  // namespace
}  // namespace pinscope::staticanalysis

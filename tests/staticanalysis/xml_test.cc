#include "staticanalysis/xml.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace pinscope::staticanalysis {
namespace {

TEST(XmlTest, ParsesElementsAttributesText) {
  const auto root = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<config name=\"main\">\n"
      "  <item id=\"1\">first</item>\n"
      "  <item id=\"2\">second</item>\n"
      "</config>");
  EXPECT_EQ(root->name, "config");
  EXPECT_EQ(root->Attr("name"), "main");
  const auto items = root->Children("item");
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0]->Attr("id"), "1");
  EXPECT_EQ(items[0]->TrimmedText(), "first");
  EXPECT_EQ(items[1]->TrimmedText(), "second");
}

TEST(XmlTest, SelfClosingTags) {
  const auto root = ParseXml("<a><b x=\"1\"/><c/></a>");
  EXPECT_NE(root->Child("b"), nullptr);
  EXPECT_NE(root->Child("c"), nullptr);
  EXPECT_EQ(root->Child("b")->Attr("x"), "1");
}

TEST(XmlTest, SkipsComments) {
  const auto root = ParseXml("<!-- head --><a><!-- inner --><b/></a>");
  EXPECT_NE(root->Child("b"), nullptr);
}

TEST(XmlTest, SingleQuotedAttributes) {
  const auto root = ParseXml("<a k='v'/>");
  EXPECT_EQ(root->Attr("k"), "v");
}

TEST(XmlTest, NamespacedAttributeNames) {
  const auto root = ParseXml(
      "<application android:networkSecurityConfig=\"@xml/nsc\"/>");
  EXPECT_EQ(root->Attr("android:networkSecurityConfig"), "@xml/nsc");
}

TEST(XmlTest, NestedTextAndChildren) {
  const auto root = ParseXml("<dict><key>K</key><true/></dict>");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->name, "key");
  EXPECT_EQ(root->children[1]->name, "true");
}

TEST(XmlTest, RejectsMalformedDocuments) {
  EXPECT_THROW(ParseXml("<a><b></a></b>"), util::ParseError);
  EXPECT_THROW(ParseXml("<unclosed>"), util::ParseError);
  EXPECT_THROW(ParseXml("<a attr=novalue/>"), util::ParseError);
  EXPECT_THROW(ParseXml("no xml at all"), util::ParseError);
  EXPECT_THROW(ParseXml("<a/><b/>"), util::ParseError);  // two roots
  EXPECT_THROW(ParseXml("<a><!-- unterminated </a>"), util::ParseError);
}

TEST(XmlTest, MissingLookupsReturnEmpty) {
  const auto root = ParseXml("<a/>");
  EXPECT_EQ(root->Child("nope"), nullptr);
  EXPECT_FALSE(root->Attr("nope").has_value());
  EXPECT_TRUE(root->Children("nope").empty());
}

}  // namespace
}  // namespace pinscope::staticanalysis

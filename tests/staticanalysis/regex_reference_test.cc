// Cross-validation: the regex engine against a brute-force reference
// implementation, over randomly generated patterns and subjects.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "staticanalysis/regex.h"
#include "util/rng.h"

namespace pinscope::staticanalysis {
namespace {

// Reference matcher for the tiny grammar used in random generation:
// literals from {a,b,c}, '.', classes [ab]/[^a], quantifiers ? * +, and a
// single-level group with alternation. Implemented by expansion into a list
// of plain alternatives matched by recursive descent — slow but obviously
// correct for bounded inputs.
bool RefMatchSeq(const std::string& pattern, std::size_t pi, const std::string& text,
                 std::size_t ti, const std::function<bool(std::size_t)>& cont);

bool RefMatchAtomThen(char atom, const std::string& pattern, std::size_t pi,
                      const std::string& text, std::size_t ti,
                      const std::function<bool(std::size_t)>& cont) {
  if (ti >= text.size()) return false;
  const char c = text[ti];
  const bool ok = atom == '.' ? true : c == atom;
  if (!ok) return false;
  return RefMatchSeq(pattern, pi, text, ti + 1, cont);
}

// Supports literals, '.', and the quantifiers ? * + on single characters.
bool RefMatchSeq(const std::string& pattern, std::size_t pi, const std::string& text,
                 std::size_t ti, const std::function<bool(std::size_t)>& cont) {
  if (pi == pattern.size()) return cont(ti);
  const char atom = pattern[pi];
  const char quant = pi + 1 < pattern.size() ? pattern[pi + 1] : '\0';

  auto single = [&](std::size_t t, const std::function<bool(std::size_t)>& k) {
    if (t >= text.size()) return false;
    if (atom != '.' && text[t] != atom) return false;
    return k(t + 1);
  };

  if (quant == '?') {
    // Greedy: one occurrence first.
    if (single(ti, [&](std::size_t t) { return RefMatchSeq(pattern, pi + 2, text, t, cont); })) {
      return true;
    }
    return RefMatchSeq(pattern, pi + 2, text, ti, cont);
  }
  if (quant == '*' || quant == '+') {
    std::function<bool(std::size_t, int)> rep = [&](std::size_t t, int count) {
      if (single(t, [&](std::size_t next) { return rep(next, count + 1); })) {
        return true;
      }
      const int min = quant == '+' ? 1 : 0;
      if (count >= min) return RefMatchSeq(pattern, pi + 2, text, t, cont);
      return false;
    };
    return rep(ti, 0);
  }
  return RefMatchAtomThen(atom, pattern, pi + 1, text, ti, cont);
}

bool RefSearch(const std::string& pattern, const std::string& text) {
  for (std::size_t start = 0; start <= text.size(); ++start) {
    if (RefMatchSeq(pattern, 0, text, start, [](std::size_t) { return true; })) {
      return true;
    }
  }
  return false;
}

std::string RandomPattern(util::Rng& rng) {
  static const std::string atoms = "abc.";
  static const std::string quants = "?*+";
  std::string p;
  const int len = rng.UniformInt(1, 5);
  for (int i = 0; i < len; ++i) {
    p.push_back(atoms[static_cast<std::size_t>(rng.UniformInt(0, 3))]);
    if (rng.Bernoulli(0.35)) {
      p.push_back(quants[static_cast<std::size_t>(rng.UniformInt(0, 2))]);
    }
  }
  return p;
}

std::string RandomText(util::Rng& rng) {
  static const std::string chars = "abcx";
  std::string t;
  const int len = rng.UniformInt(0, 8);
  for (int i = 0; i < len; ++i) {
    t.push_back(chars[static_cast<std::size_t>(rng.UniformInt(0, 3))]);
  }
  return t;
}

class RegexReference : public ::testing::TestWithParam<int> {};

TEST_P(RegexReference, AgreesWithBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 400; ++round) {
    const std::string pattern = RandomPattern(rng);
    const std::string text = RandomText(rng);
    const Regex re(pattern);
    EXPECT_EQ(re.Search(text), RefSearch(pattern, text))
        << "pattern='" << pattern << "' text='" << text << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexReference, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace pinscope::staticanalysis

// Correctness of the literal-anchor prefilter: the anchors the compiler
// extracts (with and without extractable literals), and FindAll/Search
// equivalence against a reference matcher that runs MatchAt at every
// position with no prefiltering at all.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "staticanalysis/regex.h"

namespace pinscope::staticanalysis {
namespace {

// The pre-prefilter FindAll semantics, verbatim: try every position,
// leftmost-greedy, non-overlapping. Any divergence from this is a bug in
// the anchor computation or the sweep.
std::vector<RegexMatch> ReferenceFindAll(const Regex& re, std::string_view text) {
  std::vector<RegexMatch> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t len = 0;
    if (re.MatchAt(text, pos, &len)) {
      out.push_back({pos, std::string(text.substr(pos, len))});
      pos += len == 0 ? 1 : len;
    } else {
      ++pos;
    }
  }
  return out;
}

void ExpectSameMatches(const Regex& re, std::string_view text) {
  const std::vector<RegexMatch> expected = ReferenceFindAll(re, text);
  const std::vector<RegexMatch> actual = re.FindAll(text);
  ASSERT_EQ(expected.size(), actual.size())
      << "pattern '" << re.pattern() << "' on '" << std::string(text) << "'";
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].position, actual[i].position) << i;
    EXPECT_EQ(expected[i].text, actual[i].text) << i;
  }
  EXPECT_EQ(re.Search(text), !expected.empty());
}

TEST(RegexAnchorTest, PinPatternAnchorsOnItsPrefix) {
  const Regex re("sha(1|256)/[a-zA-Z0-9+/=]{28,64}");
  const LiteralAnchor& a = re.required_literal();
  EXPECT_EQ(a.literal, "sha");
  EXPECT_EQ(a.min_offset, 0u);
  EXPECT_EQ(a.max_offset, 0u);
  EXPECT_TRUE(a.bounded());
  EXPECT_EQ(re.literal_prefix(), "sha");
}

TEST(RegexAnchorTest, LiteralAfterGroupIsFound) {
  // The old prefix computation saw nothing here; the anchor sees the
  // mandatory "cert/" at a fixed offset of 1.
  const Regex re("(a|b)cert/x");
  const LiteralAnchor& a = re.required_literal();
  EXPECT_EQ(a.literal, "cert/x");
  EXPECT_EQ(a.min_offset, 1u);
  EXPECT_EQ(a.max_offset, 1u);
  EXPECT_TRUE(re.literal_prefix().empty());
}

TEST(RegexAnchorTest, UnboundedQuantifierMakesOffsetUnbounded) {
  const Regex re("[0-9]+-pin-[0-9]+");
  const LiteralAnchor& a = re.required_literal();
  EXPECT_EQ(a.literal, "-pin-");
  EXPECT_EQ(a.min_offset, 1u);
  EXPECT_FALSE(a.bounded());
}

TEST(RegexAnchorTest, CommonSubstringAcrossAlternativesQualifies) {
  const Regex re("(foo|food)!");
  EXPECT_EQ(re.required_literal().literal, "foo");
  EXPECT_EQ(re.required_literal().min_offset, 0u);
  EXPECT_EQ(re.required_literal().max_offset, 0u);
}

TEST(RegexAnchorTest, ExactQuantifierExtendsTheRun) {
  const Regex re("ab{3}c");
  const LiteralAnchor& a = re.required_literal();
  EXPECT_EQ(a.literal, "abbbc");
  EXPECT_EQ(a.min_offset, 0u);
  EXPECT_EQ(a.max_offset, 0u);
}

TEST(RegexAnchorTest, VariableQuantifierKeepsGuaranteedMinimum) {
  const Regex re("ab{2,4}c");
  // "abb" is guaranteed adjacent; "c" floats at offset 3..5. Longest wins.
  const LiteralAnchor& a = re.required_literal();
  EXPECT_EQ(a.literal, "abb");
  EXPECT_EQ(a.min_offset, 0u);
  EXPECT_EQ(a.max_offset, 0u);
}

TEST(RegexAnchorTest, GroupBeforeLiteralGivesBoundedWindow) {
  const Regex re("(1|256)sha");
  const LiteralAnchor& a = re.required_literal();
  EXPECT_EQ(a.literal, "sha");
  EXPECT_EQ(a.min_offset, 1u);
  EXPECT_EQ(a.max_offset, 3u);
  EXPECT_TRUE(a.bounded());
}

TEST(RegexAnchorTest, PatternsWithoutExtractableLiterals) {
  EXPECT_TRUE(Regex("a|b").required_literal().literal.empty());
  EXPECT_TRUE(Regex("[ab]+").required_literal().literal.empty());
  EXPECT_TRUE(Regex("[0-9]{2,3}").required_literal().literal.empty());
  EXPECT_TRUE(Regex(".*").required_literal().literal.empty());
  EXPECT_TRUE(Regex("x?").required_literal().literal.empty());
  // Disjoint alternatives with no common substring: conservatively none.
  EXPECT_TRUE(Regex("(food|feet)").required_literal().literal.empty());
}

TEST(RegexAnchorTest, OptionalLiteralIsNotMandatory) {
  const Regex re("x?yz");
  EXPECT_EQ(re.required_literal().literal, "yz");
  EXPECT_EQ(re.required_literal().min_offset, 0u);
  EXPECT_EQ(re.required_literal().max_offset, 1u);
}

TEST(RegexPrefilterTest, FindAllMatchesReferenceOnPinLikeSubjects) {
  const Regex re("sha(1|256)/[a-zA-Z0-9+/=]{28,64}");
  const std::string pin44 = "sha256/" + std::string(43, 'A') + "=";
  const std::vector<std::string> subjects = {
      "",
      "no pins here at all",
      pin44,
      "prefix " + pin44 + " suffix",
      pin44 + pin44,                       // adjacent matches
      "sha sha2 sha25 sha256/short",       // many near-miss literals
      "sha256/" + std::string(27, 'B'),    // one char below the minimum
      "sha1/" + std::string(28, 'C'),
      std::string(500, 'x') + pin44,       // literal deep in the subject
      pin44.substr(0, pin44.size() - 1),   // truncated at end of subject
  };
  for (const std::string& s : subjects) {
    SCOPED_TRACE(s.substr(0, 40));
    ExpectSameMatches(re, s);
  }
}

TEST(RegexPrefilterTest, FindAllMatchesReferenceAcrossAnchorShapes) {
  const std::vector<std::string> patterns = {
      "(a|b)cert/x",        // bounded non-zero offset
      "[0-9]+-pin-[0-9]+",  // unbounded offset, existence filter only
      "(1|256)sha",         // bounded window [1,3]
      "(foo|food)!",        // substring-common alternation
      "ab{2,4}c",           // variable quantifier run
      "x?yz",               // optional head
      "a|b",                // no anchor at all
      "[0-9]{2,3}",         // no anchor, pure classes
  };
  const std::vector<std::string> subjects = {
      "",
      "acert/x bcert/x ccert/x",
      "42-pin-7 x-pin-y 123-pin-456-pin-789",
      "256sha 1sha sha 99sha",
      "foo! food! foot! fool!",
      "abc abbc abbbc abbbbc abbbbbc",
      "yz xyz xxyz zy",
      "ab ba",
      "1 22 333 4444",
      "edge at end: acert/",  // literal candidate truncated at subject end
  };
  for (const std::string& p : patterns) {
    const Regex re(p);
    for (const std::string& s : subjects) {
      SCOPED_TRACE("pattern=" + p + " subject=" + s);
      ExpectSameMatches(re, s);
    }
  }
}

TEST(RegexPrefilterTest, SearchBailsOutWithoutTheLiteral) {
  // Not directly observable as a result difference, but the sweep must
  // return false (not crash or loop) when the anchor never occurs.
  const Regex re("(a|b)needle[0-9]{2}");
  EXPECT_EQ(re.required_literal().literal, "needle");
  EXPECT_FALSE(re.Search(std::string(10000, 'n')));
  EXPECT_TRUE(re.FindAll(std::string(10000, 'n')).empty());
  EXPECT_TRUE(re.Search("xx aneedle42 yy"));
}

}  // namespace
}  // namespace pinscope::staticanalysis

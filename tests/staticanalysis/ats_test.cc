#include "staticanalysis/ats_analyzer.h"

#include <gtest/gtest.h>

#include "appmodel/ios_package.h"
#include "util/base64.h"
#include "util/rng.h"

namespace pinscope::staticanalysis {
namespace {

appmodel::AppMetadata Meta() {
  appmodel::AppMetadata meta;
  meta.app_id = "com.ats.app";
  meta.display_name = "ATS App";
  meta.platform = appmodel::Platform::kIos;
  return meta;
}

TEST(AtsAnalyzerTest, EmptyTreeYieldsNothing) {
  const AtsAnalysis result = AnalyzeAts(appmodel::PackageFiles{});
  EXPECT_FALSE(result.has_info_plist);
  EXPECT_FALSE(result.PinsViaAts());
}

TEST(AtsAnalyzerTest, ReadsBundleId) {
  util::Rng rng(1);
  const auto ipa = appmodel::IosPackageBuilder(Meta()).Build(rng);
  const AtsAnalysis result = AnalyzeAts(ipa);
  EXPECT_TRUE(result.has_info_plist);
  EXPECT_EQ(result.bundle_id, "com.ats.app");
  EXPECT_FALSE(result.PinsViaAts());
}

TEST(AtsAnalyzerTest, ParsesPinnedDomains) {
  util::Rng rng(2);
  appmodel::AtsPinnedDomain domain;
  domain.domain = "api.ats.com";
  domain.include_subdomains = true;
  domain.spki_sha256_base64 = {util::Base64Encode(util::Bytes(32, 0x24))};
  const auto ipa =
      appmodel::IosPackageBuilder(Meta()).WithAtsPinnedDomains({domain}).Build(rng);

  const AtsAnalysis result = AnalyzeAts(ipa);
  ASSERT_EQ(result.pinned_domains.size(), 1u);
  EXPECT_EQ(result.pinned_domains[0].domain, "api.ats.com");
  EXPECT_TRUE(result.pinned_domains[0].include_subdomains);
  ASSERT_EQ(result.pinned_domains[0].pins.size(), 1u);
  EXPECT_TRUE(result.PinsViaAts());
}

TEST(AtsAnalyzerTest, ParsesAssociatedDomainsFromEntitlements) {
  util::Rng rng(3);
  const auto ipa = appmodel::IosPackageBuilder(Meta())
                       .WithAssociatedDomains({"ats.com", "www.ats.com"})
                       .Build(rng);
  const AtsAnalysis result = AnalyzeAts(ipa);
  EXPECT_EQ(result.associated_domains,
            (std::vector<std::string>{"ats.com", "www.ats.com"}));
}

TEST(AtsAnalyzerTest, MalformedPinDigestIsSkipped) {
  util::Rng rng(4);
  appmodel::AtsPinnedDomain domain;
  domain.domain = "bad.ats.com";
  domain.spki_sha256_base64 = {"not-base64!!!"};
  const auto ipa =
      appmodel::IosPackageBuilder(Meta()).WithAtsPinnedDomains({domain}).Build(rng);
  const AtsAnalysis result = AnalyzeAts(ipa);
  EXPECT_FALSE(result.PinsViaAts());
}

TEST(AtsAnalyzerTest, CorruptPlistIsNotFatal) {
  appmodel::PackageFiles ipa;
  ipa.AddText("Payload/X.app/Info.plist", "<plist><dict><key>unclosed");
  const AtsAnalysis result = AnalyzeAts(ipa);
  EXPECT_FALSE(result.has_info_plist);
}

}  // namespace
}  // namespace pinscope::staticanalysis

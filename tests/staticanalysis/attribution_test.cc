#include "staticanalysis/attribution.h"

#include <gtest/gtest.h>

namespace pinscope::staticanalysis {
namespace {

using appmodel::Platform;

TEST(AttributionTest, NormalizesSmaliPathsToCatalogPackages) {
  EXPECT_EQ(NormalizeEvidencePath("smali/com/twitter/sdk/android/Pins.smali",
                                  Platform::kAndroid),
            "com/twitter/sdk");
  EXPECT_EQ(NormalizeEvidencePath("smali/com/mparticle/Config.smali",
                                  Platform::kAndroid),
            "com/mparticle");
}

TEST(AttributionTest, UnknownSmaliFallsBackToTwoComponents) {
  EXPECT_EQ(NormalizeEvidencePath("smali/com/randomapp/net/Pinner.smali",
                                  Platform::kAndroid),
            "com/randomapp");
}

TEST(AttributionTest, NativeLibsNormalizeToLibraryName) {
  EXPECT_EQ(NormalizeEvidencePath("lib/arm64-v8a/libpinning.so", Platform::kAndroid),
            "libpinning.so");
}

TEST(AttributionTest, GenericPathsAreDropped) {
  EXPECT_EQ(NormalizeEvidencePath("assets/ca_bundle.pem", Platform::kAndroid), "");
  EXPECT_EQ(NormalizeEvidencePath("res/raw/cert.der", Platform::kAndroid), "");
  EXPECT_EQ(NormalizeEvidencePath("Payload/App.app/App", Platform::kIos), "");
  EXPECT_EQ(NormalizeEvidencePath("Payload/App.app/server.cer", Platform::kIos), "");
}

TEST(AttributionTest, IosFrameworksNormalizeToFrameworkDir) {
  EXPECT_EQ(NormalizeEvidencePath(
                "Payload/App.app/Frameworks/Stripe.framework/Stripe", Platform::kIos),
            "Frameworks/Stripe.framework");
}

std::vector<AppEvidence> MakeEvidence(int twitter_apps, int own_code_apps) {
  std::vector<AppEvidence> evidence;
  for (int i = 0; i < twitter_apps; ++i) {
    AppEvidence e;
    e.app_id = "com.app" + std::to_string(i);
    e.platform = Platform::kAndroid;
    e.evidence_paths = {"smali/com/twitter/sdk/android/Pins.smali"};
    evidence.push_back(std::move(e));
  }
  for (int i = 0; i < own_code_apps; ++i) {
    AppEvidence e;
    e.app_id = "com.own" + std::to_string(i);
    e.platform = Platform::kAndroid;
    // Each app's own package: never shared, so never attributed.
    e.evidence_paths = {"smali/com/own" + std::to_string(i) + "/Pins.smali"};
    evidence.push_back(std::move(e));
  }
  return evidence;
}

TEST(AttributionTest, RequiresMoreThanMinApps) {
  // §4.1.4: paths appearing in more than 5 apps are reviewed.
  const auto few = AttributeFrameworks(MakeEvidence(5, 0), Platform::kAndroid, 5);
  EXPECT_TRUE(few.empty());
  const auto enough = AttributeFrameworks(MakeEvidence(6, 0), Platform::kAndroid, 5);
  ASSERT_EQ(enough.size(), 1u);
  EXPECT_EQ(enough[0].framework, "Twitter");
  EXPECT_EQ(enough[0].app_count, 6u);
  EXPECT_TRUE(enough[0].matched_catalog);
}

TEST(AttributionTest, AppSpecificPathsNeverAggregate) {
  const auto result = AttributeFrameworks(MakeEvidence(0, 20), Platform::kAndroid, 5);
  EXPECT_TRUE(result.empty());
}

TEST(AttributionTest, CountsDistinctAppsNotOccurrences) {
  std::vector<AppEvidence> evidence;
  AppEvidence e;
  e.app_id = "com.dup";
  e.platform = Platform::kAndroid;
  // Same app, many files in the same SDK dir.
  for (int i = 0; i < 10; ++i) {
    e.evidence_paths.push_back("smali/com/twitter/sdk/f" + std::to_string(i) + ".smali");
  }
  evidence.push_back(e);
  const auto result = AttributeFrameworks(evidence, Platform::kAndroid, 0);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].app_count, 1u);
}

TEST(AttributionTest, OrdersByDescendingAppCount) {
  std::vector<AppEvidence> evidence = MakeEvidence(8, 0);
  for (int i = 0; i < 12; ++i) {
    AppEvidence e;
    e.app_id = "com.stripe" + std::to_string(i);
    e.platform = Platform::kAndroid;
    e.evidence_paths = {"smali/com/stripe/android/Pins.smali"};
    evidence.push_back(std::move(e));
  }
  const auto result = AttributeFrameworks(evidence, Platform::kAndroid, 5);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].framework, "Stripe");
  EXPECT_EQ(result[1].framework, "Twitter");
}

TEST(AttributionTest, FiltersByPlatform) {
  const auto result = AttributeFrameworks(MakeEvidence(10, 0), Platform::kIos, 5);
  EXPECT_TRUE(result.empty());
}

}  // namespace
}  // namespace pinscope::staticanalysis

// Persistence tests for the corpus-wide scan cache (DESIGN.md §15): a saved
// cache reloads into an equal cache (equal caches re-serialize to identical
// bytes), a warm cache serves scans identical to cold ones, every damaged
// file loads nothing (the cold-start path), and concurrent saves into one
// path are last-writer-wins through the atomic rename. Carries the `stream`
// ctest label so it also runs under the sanitizer presets.
#include "staticanalysis/scan_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "appmodel/package.h"
#include "staticanalysis/scanner.h"
#include "tls/pinning.h"
#include "util/cache_file.h"
#include "x509/issuer.h"
#include "x509/pem.h"

namespace pinscope::staticanalysis {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

x509::Certificate TestCert(const std::string& cn) {
  x509::IssueSpec spec;
  spec.subject.set_common_name(cn);
  return x509::CertificateIssuer::SelfSignedLeaf("persist:" + cn, spec);
}

// A package whose scan outcome exercises every serialized field: a PEM
// certificate, well-formed pins (parsed present), and a malformed pin
// (parsed absent).
appmodel::PackageFiles SamplePackage(const std::string& salt) {
  const x509::Certificate cert = TestCert("pem." + salt + ".example");
  const std::string pin =
      tls::Pin::ForCertificate(TestCert("pin." + salt + ".example"),
                               tls::PinForm::kSpkiSha256)
          .ToPinString();
  appmodel::PackageFiles files;
  files.AddText("assets/ca.pem", x509::PemEncode(cert));
  files.AddText("smali/Pins.smali", "const-string v0, \"" + pin + "\"");
  files.AddText("config/pins.json",
                "{\"pin\": \"" + pin + "\", \"bad\": \"sha256/!!notbase64such"
                "aninvalidpinmaterialvalue!!\"}");
  files.AddText("notes-" + salt + ".txt", "no evidence here: " + salt);
  return files;
}

class ScanCachePersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pinscope_scan_cache_persist_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string PathFor(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(ScanCachePersistTest, SaveLoadSaveIsByteStable) {
  const Scanner scanner;
  ScanCache original;
  (void)scanner.Scan(SamplePackage("one"), &original);
  (void)scanner.Scan(SamplePackage("two"), &original);
  ASSERT_GT(original.EntryCount(), 0u);

  const std::string first = PathFor("first.pscf");
  const std::string second = PathFor("second.pscf");
  ASSERT_TRUE(original.SaveToFile(first));

  ScanCache reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(first));
  EXPECT_EQ(reloaded.EntryCount(), original.EntryCount());
  ASSERT_TRUE(reloaded.SaveToFile(second));

  // Equal caches serialize byte-identically — the property that makes
  // concurrent last-writer-wins saves unobservable.
  EXPECT_EQ(ReadFileBytes(first), ReadFileBytes(second));
}

TEST_F(ScanCachePersistTest, WarmCacheServesScansIdenticalToCold) {
  const appmodel::PackageFiles files = SamplePackage("warm");
  const Scanner scanner;

  ScanCache cold_cache;
  const ScanResult cold = scanner.Scan(files, &cold_cache);
  const std::string path = PathFor("scan.pscf");
  ASSERT_TRUE(cold_cache.SaveToFile(path));

  ScanCache warm_cache;
  ASSERT_TRUE(warm_cache.LoadFromFile(path));
  const ScanResult warm = scanner.Scan(files, &warm_cache);

  // Everything is served from disk: no file is rescanned.
  EXPECT_EQ(warm.cache_hits, files.size());
  ASSERT_EQ(warm.pins.size(), cold.pins.size());
  for (std::size_t i = 0; i < cold.pins.size(); ++i) {
    EXPECT_EQ(warm.pins[i].path, cold.pins[i].path) << i;
    EXPECT_EQ(warm.pins[i].pin_string, cold.pins[i].pin_string) << i;
    EXPECT_EQ(warm.pins[i].offset, cold.pins[i].offset) << i;
    ASSERT_EQ(warm.pins[i].parsed.has_value(), cold.pins[i].parsed.has_value())
        << i;
    if (cold.pins[i].parsed.has_value()) {
      // The parsed form is serialized, not recomputed — it must round trip
      // exactly.
      EXPECT_EQ(*warm.pins[i].parsed, *cold.pins[i].parsed) << i;
    }
  }
  ASSERT_EQ(warm.certificates.size(), cold.certificates.size());
  for (std::size_t i = 0; i < cold.certificates.size(); ++i) {
    EXPECT_EQ(warm.certificates[i].path, cold.certificates[i].path) << i;
    EXPECT_EQ(warm.certificates[i].cert, cold.certificates[i].cert) << i;
    EXPECT_EQ(warm.certificates[i].from_pem, cold.certificates[i].from_pem)
        << i;
  }
}

TEST_F(ScanCachePersistTest, DamagedFilesLoadNothing) {
  const Scanner scanner;
  ScanCache original;
  (void)scanner.Scan(SamplePackage("victim"), &original);
  const std::string path = PathFor("scan.pscf");
  ASSERT_TRUE(original.SaveToFile(path));

  {  // Flipped payload byte: checksum rejects.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    char last = 0;
    f.seekg(-1, std::ios::end);
    f.read(&last, 1);
    f.seekp(-1, std::ios::end);
    last = static_cast<char>(last ^ 0x40);
    f.write(&last, 1);
  }
  ScanCache corrupt;
  EXPECT_FALSE(corrupt.LoadFromFile(path));
  EXPECT_EQ(corrupt.EntryCount(), 0u);

  ASSERT_TRUE(original.SaveToFile(path));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  ScanCache truncated;
  EXPECT_FALSE(truncated.LoadFromFile(path));
  EXPECT_EQ(truncated.EntryCount(), 0u);

  // A well-formed container of a foreign kind (someone pointed two caches at
  // one file) is rejected by the kind tag, not mis-decoded.
  ASSERT_TRUE(util::WriteCacheFile(path, ScanCache::kFileKind + 1,
                                   ScanCache::kFileVersion, {1, 2, 3}));
  ScanCache foreign;
  EXPECT_FALSE(foreign.LoadFromFile(path));
  EXPECT_EQ(foreign.EntryCount(), 0u);

  ScanCache missing;
  EXPECT_FALSE(missing.LoadFromFile(PathFor("never-written.pscf")));
  EXPECT_EQ(missing.EntryCount(), 0u);
}

TEST_F(ScanCachePersistTest, ConcurrentSavesAreAtomicAndLastWriterWins) {
  // Two studies that analyzed the same corpus hold equal caches; racing
  // their saves into one --cache-dir must leave one intact, loadable file.
  const Scanner scanner;
  ScanCache a, b;
  for (const std::string salt : {"x", "y", "z"}) {
    (void)scanner.Scan(SamplePackage(salt), &a);
    (void)scanner.Scan(SamplePackage(salt), &b);
  }
  ASSERT_EQ(a.EntryCount(), b.EntryCount());

  const std::string path = PathFor("shared.pscf");
  const std::string reference = PathFor("reference.pscf");
  ASSERT_TRUE(a.SaveToFile(reference));

  for (int round = 0; round < 8; ++round) {
    std::thread ta([&] { ASSERT_TRUE(a.SaveToFile(path)); });
    std::thread tb([&] { ASSERT_TRUE(b.SaveToFile(path)); });
    ta.join();
    tb.join();
    // Whichever writer landed last, the file is whole and equal to a serial
    // save of either cache.
    EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(reference)) << round;
    ScanCache loaded;
    EXPECT_TRUE(loaded.LoadFromFile(path)) << round;
    EXPECT_EQ(loaded.EntryCount(), a.EntryCount()) << round;
  }
}

}  // namespace
}  // namespace pinscope::staticanalysis

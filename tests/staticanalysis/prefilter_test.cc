// MultiLiteralPrefilter contract tests: exactness against a naive reference
// over random haystacks × literal sets, the documented (pos, pattern) hit
// ordering, overlapping occurrences, and SIMD-vs-forced-portable
// equivalence via the PINSCOPE_NO_SIMD / PINSCOPE_NO_AVX2 env knobs (read
// at construction, so each test builds fresh filters after setenv).
#include "staticanalysis/prefilter.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "crypto/cpu.h"
#include "staticanalysis/scanner.h"
#include "x509/issuer.h"
#include "x509/pem.h"

namespace pinscope::staticanalysis {
namespace {

/// Scoped setenv/unsetenv so a failing assertion cannot leak a knob into
/// later tests in this binary.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    ::setenv(name, "1", /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

/// The obviously-correct O(n·k) reference the kernels must agree with.
std::vector<PrefilterHit> Reference(const std::vector<std::string>& literals,
                                    std::string_view text) {
  std::vector<PrefilterHit> out;
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    for (std::uint32_t id = 0; id < literals.size(); ++id) {
      const std::string& lit = literals[id];
      if (lit.empty() || pos + lit.size() > text.size()) continue;
      if (text.compare(pos, lit.size(), lit) == 0) out.push_back({pos, id});
    }
  }
  return out;
}

std::vector<PrefilterHit> Hits(const MultiLiteralPrefilter& filter,
                              std::string_view text) {
  std::vector<PrefilterHit> hits;
  filter.FindAll(text, hits);
  return hits;
}

TEST(PrefilterTest, EmptyTextAndEmptyLiterals) {
  const MultiLiteralPrefilter filter({"abc", "", "x"});
  EXPECT_TRUE(Hits(filter, "").empty());
  // The empty literal never matches; others do.
  const auto hits = Hits(filter, "xabc");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (PrefilterHit{0, 2}));
  EXPECT_EQ(hits[1], (PrefilterHit{1, 0}));
}

TEST(PrefilterTest, NoLiteralsMeansNoHits) {
  const MultiLiteralPrefilter filter({});
  EXPECT_TRUE(Hits(filter, "anything at all").empty());
}

TEST(PrefilterTest, FindsOverlappingOccurrences) {
  const MultiLiteralPrefilter filter({"aaa"});
  const auto hits = Hits(filter, "aaaaaa");
  ASSERT_EQ(hits.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(hits[i].pos, i);
}

TEST(PrefilterTest, OrdersByPositionThenPattern) {
  // Three literals that all start at position 0 of "abcd", plus one later.
  const MultiLiteralPrefilter filter({"abc", "a", "ab", "cd"});
  const auto hits = Hits(filter, "abcd");
  const std::vector<PrefilterHit> expected = {
      {0, 0}, {0, 1}, {0, 2}, {2, 3}};
  EXPECT_EQ(hits, expected);
}

TEST(PrefilterTest, RepeatedPrefixLiteralsUseInteriorProbes) {
  // "-----BEGIN"-shaped literals anchor their probe pair inside the literal
  // (a "--" probe would fire at every dash-run position), so occurrences
  // whose probe lands mid-literal must still be reported at the literal
  // start, in (pos, pattern) order, overlapping dash runs included.
  const std::vector<std::string> literals = {"---ab", "--a"};
  const MultiLiteralPrefilter filter(literals);
  const std::string text = "-------ab----a---ab--a-";
  EXPECT_EQ(Hits(filter, text), Reference(literals, text));
  // Occurrence flush at the very start: probe offset > 0 must not push the
  // verified start below zero or skip position 0.
  EXPECT_EQ(Hits(filter, "---ab"), Reference(literals, "---ab"));
  EXPECT_EQ(Hits(filter, "--a"), Reference(literals, "--a"));
}

TEST(PrefilterTest, LiteralAtVeryEndOfText) {
  const MultiLiteralPrefilter filter({"end", "d"});
  const auto hits = Hits(filter, std::string(100, 'x') + "end");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (PrefilterHit{100, 0}));
  EXPECT_EQ(hits[1], (PrefilterHit{102, 1}));
}

TEST(PrefilterTest, MatchesReferenceOnRandomHaystacks) {
  std::mt19937 rng(0x5eed);
  // Small alphabet so literals actually occur; lengths crossing the 16/32
  // byte kernel block sizes and their tails.
  const std::string alphabet = "abcs-";
  std::uniform_int_distribution<std::size_t> len_dist(0, 700);
  std::uniform_int_distribution<std::size_t> lit_count_dist(1, 5);
  std::uniform_int_distribution<std::size_t> lit_len_dist(1, 8);
  std::uniform_int_distribution<std::size_t> chr(0, alphabet.size() - 1);

  for (int round = 0; round < 200; ++round) {
    std::vector<std::string> literals(lit_count_dist(rng));
    for (std::string& lit : literals) {
      lit.resize(lit_len_dist(rng));
      for (char& c : lit) c = alphabet[chr(rng)];
    }
    std::string text(len_dist(rng), '\0');
    for (char& c : text) c = alphabet[chr(rng)];

    const MultiLiteralPrefilter filter(literals);
    EXPECT_EQ(Hits(filter, text), Reference(literals, text))
        << "round " << round << " level " << filter.level_name();
  }
}

TEST(PrefilterTest, ForcedPortableMatchesSimd) {
  std::mt19937 rng(0xf00d);
  const std::vector<std::string> literals = {
      std::string(x509::kPemBegin), "sha", "-----", "s"};
  std::uniform_int_distribution<int> chr(0x20, 0x7e);

  for (int round = 0; round < 50; ++round) {
    std::string text(513, '\0');
    for (char& c : text) c = static_cast<char>(chr(rng));
    // Plant some literal occurrences so the comparison is not vacuous.
    text.replace(17, 3, "sha");
    text.replace(101, x509::kPemBegin.size(), x509::kPemBegin);

    const MultiLiteralPrefilter simd(literals);
    std::vector<PrefilterHit> simd_hits = Hits(simd, text);
    {
      const ScopedEnv no_simd("PINSCOPE_NO_SIMD");
      const MultiLiteralPrefilter portable(literals);
      ASSERT_EQ(portable.level(), crypto::cpu::SimdLevel::kPortable);
      EXPECT_EQ(Hits(portable, text), simd_hits) << "round " << round;
    }
  }
}

TEST(PrefilterTest, NoAvx2KnobCapsLevelAtSse2) {
#if defined(__x86_64__)
  const ScopedEnv no_avx2("PINSCOPE_NO_AVX2");
  const MultiLiteralPrefilter filter({"sha"});
  EXPECT_EQ(filter.level(), crypto::cpu::SimdLevel::kSse2);
  EXPECT_EQ(Hits(filter, "xxshaxxsha"),
            (std::vector<PrefilterHit>{{2, 0}, {7, 0}}));
#else
  GTEST_SKIP() << "x86-only knob";
#endif
}

// --- Scanner-level equivalence: prefiltered vs legacy two-sweep path ------

x509::Certificate ScanTestCert(const std::string& cn) {
  x509::IssueSpec spec;
  spec.subject.set_common_name(cn);
  return x509::CertificateIssuer::SelfSignedLeaf("prefilter:" + cn, spec);
}

void ExpectSameScan(const ScanResult& a, const ScanResult& b) {
  ASSERT_EQ(a.certificates.size(), b.certificates.size());
  for (std::size_t i = 0; i < a.certificates.size(); ++i) {
    EXPECT_EQ(a.certificates[i].path, b.certificates[i].path);
    EXPECT_EQ(a.certificates[i].cert, b.certificates[i].cert);
    EXPECT_EQ(a.certificates[i].from_pem, b.certificates[i].from_pem);
  }
  ASSERT_EQ(a.pins.size(), b.pins.size());
  for (std::size_t i = 0; i < a.pins.size(); ++i) {
    EXPECT_EQ(a.pins[i].path, b.pins[i].path);
    EXPECT_EQ(a.pins[i].pin_string, b.pins[i].pin_string);
    EXPECT_EQ(a.pins[i].offset, b.pins[i].offset);
    EXPECT_EQ(a.pins[i].parsed.has_value(), b.pins[i].parsed.has_value());
  }
}

TEST(PrefilterTest, ScannerPrefilterMatchesLegacySweep) {
  // A package exercising every scan shape at once: PEM bundles (with a
  // decoy BEGIN inside a body region), pins in text and binary files,
  // truncated PEM armor, and near-miss pin strings.
  const x509::Certificate c1 = ScanTestCert("one.example.com");
  const x509::Certificate c2 = ScanTestCert("two.example.com");
  const std::string pin =
      tls::Pin::ForCertificate(c1, tls::PinForm::kSpkiSha256).ToPinString();

  appmodel::PackageFiles files;
  // .txt, not .pem: the cert-file fast path would stop at the first block
  // instead of content-scanning the whole bundle.
  files.AddText("assets/bundle.txt",
                x509::PemEncode(c1) + "garbage between blocks sha1/short\n" +
                    x509::PemEncode(c2));
  files.AddText("assets/truncated.txt",
                std::string(x509::kPemBegin) + "\nAAAA no end marker");
  files.AddText("smali/Pins.smali",
                "const-string v0, \"" + pin + "\"\nsha256/not-a-pin shash\n");
  util::Bytes blob = {0x00, 0x01, 0x7f};
  util::Append(blob, "lib-strings " + pin + " tail");
  blob.push_back(0x00);
  files.Add("lib/libnative.so", blob);

  const Scanner fast;
  const ScanResult with_prefilter = fast.Scan(files);
  EXPECT_TRUE(fast.prefilter_enabled());
  {
    const ScopedEnv no_prefilter("PINSCOPE_NO_PREFILTER");
    const Scanner legacy;
    EXPECT_FALSE(legacy.prefilter_enabled());
    ExpectSameScan(with_prefilter, legacy.Scan(files));
  }
  // Sanity: the corpus produced real findings.
  EXPECT_EQ(with_prefilter.certificates.size(), 2u);
  GTEST_ASSERT_GE(with_prefilter.pins.size(), 1u);
}

TEST(PrefilterTest, ScannerFuzzPrefilterMatchesLegacy) {
  std::mt19937 rng(0xca11);
  const std::string pieces[] = {
      "sha256/", "sha1/", "sha", "-----BEGIN CERTIFICATE-----",
      "-----END CERTIFICATE-----", "AAAA", "====", "abc", "/",
      std::string(40, 'Q'), "\n"};
  std::uniform_int_distribution<std::size_t> piece(0, std::size(pieces) - 1);
  std::uniform_int_distribution<std::size_t> count(0, 60);

  for (int round = 0; round < 40; ++round) {
    std::string content;
    const std::size_t n = count(rng);
    for (std::size_t i = 0; i < n; ++i) content += pieces[piece(rng)];
    appmodel::PackageFiles files;
    files.AddText("assets/fuzz.txt", content);

    const Scanner fast;
    const ScanResult a = fast.Scan(files);
    const ScopedEnv no_prefilter("PINSCOPE_NO_PREFILTER");
    const Scanner legacy;
    ExpectSameScan(a, legacy.Scan(files));
  }
}

}  // namespace
}  // namespace pinscope::staticanalysis

// Extended Network-Security-Config semantics: base-config, debug-overrides,
// cleartext flags, and the lint pass built on them.
#include <gtest/gtest.h>

#include "appmodel/android_package.h"
#include "staticanalysis/nsc_analyzer.h"
#include "util/base64.h"

namespace pinscope::staticanalysis {
namespace {

appmodel::AppMetadata Meta() {
  appmodel::AppMetadata meta;
  meta.app_id = "com.nscx.app";
  meta.display_name = "NSCX";
  meta.platform = appmodel::Platform::kAndroid;
  return meta;
}

std::string ValidPin() {
  return "sha256/" + util::Base64Encode(util::Bytes(32, 0x55));
}

TEST(NscExtendedTest, ParsesBaseConfig) {
  appmodel::NscDocument doc;
  doc.base.present = true;
  doc.base.cleartext_permitted = false;
  doc.base.trust_user_anchors = true;
  const auto apk =
      appmodel::AndroidPackageBuilder(Meta()).WithNscDocument(doc).Build();
  const NscAnalysis result = AnalyzeNsc(apk);
  EXPECT_TRUE(result.has_base_config);
  EXPECT_EQ(result.base_cleartext_permitted, false);
  EXPECT_TRUE(result.base_trusts_user_anchors);
}

TEST(NscExtendedTest, ParsesDebugOverrides) {
  appmodel::NscDocument doc;
  doc.debug_overrides.present = true;
  doc.debug_overrides.trust_user_anchors = true;
  const auto apk =
      appmodel::AndroidPackageBuilder(Meta()).WithNscDocument(doc).Build();
  const NscAnalysis result = AnalyzeNsc(apk);
  EXPECT_TRUE(result.has_debug_overrides);
  EXPECT_TRUE(result.debug_trusts_user_anchors);
}

TEST(NscExtendedTest, ParsesPerDomainCleartext) {
  appmodel::NscDomainConfig cfg;
  cfg.domain = "legacy.nscx.com";
  cfg.cleartext_permitted = true;
  const auto apk = appmodel::AndroidPackageBuilder(Meta()).WithNsc({cfg}).Build();
  const NscAnalysis result = AnalyzeNsc(apk);
  ASSERT_EQ(result.domains.size(), 1u);
  EXPECT_EQ(result.domains[0].cleartext_permitted, true);
}

TEST(NscExtendedTest, UnsetCleartextStaysUnset) {
  appmodel::NscDomainConfig cfg;
  cfg.domain = "strict.nscx.com";
  const auto apk = appmodel::AndroidPackageBuilder(Meta()).WithNsc({cfg}).Build();
  const NscAnalysis result = AnalyzeNsc(apk);
  ASSERT_EQ(result.domains.size(), 1u);
  EXPECT_FALSE(result.domains[0].cleartext_permitted.has_value());
}

TEST(NscExtendedTest, LintFlagsDebugUserTrust) {
  appmodel::NscDocument doc;
  doc.debug_overrides.present = true;
  doc.debug_overrides.trust_user_anchors = true;
  const auto apk =
      appmodel::AndroidPackageBuilder(Meta()).WithNscDocument(doc).Build();
  const auto findings = AnalyzeNsc(apk).LintFindings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("debug-overrides"), std::string::npos);
}

TEST(NscExtendedTest, LintFlagsGlobalCleartext) {
  appmodel::NscDocument doc;
  doc.base.present = true;
  doc.base.cleartext_permitted = true;
  const auto apk =
      appmodel::AndroidPackageBuilder(Meta()).WithNscDocument(doc).Build();
  const auto findings = AnalyzeNsc(apk).LintFindings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("cleartext"), std::string::npos);
}

TEST(NscExtendedTest, LintFlagsMissingBackupPin) {
  appmodel::NscDomainConfig cfg;
  cfg.domain = "api.nscx.com";
  cfg.pin_strings = {ValidPin()};
  const auto apk = appmodel::AndroidPackageBuilder(Meta()).WithNsc({cfg}).Build();
  const auto findings = AnalyzeNsc(apk).LintFindings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("backup pin"), std::string::npos);
}

TEST(NscExtendedTest, BackupPinSilencesThatFinding) {
  appmodel::NscDomainConfig cfg;
  cfg.domain = "api.nscx.com";
  cfg.pin_strings = {ValidPin(),
                     "sha256/" + util::Base64Encode(util::Bytes(32, 0x66))};
  const auto apk = appmodel::AndroidPackageBuilder(Meta()).WithNsc({cfg}).Build();
  EXPECT_TRUE(AnalyzeNsc(apk).LintFindings().empty());
}

TEST(NscExtendedTest, CleanDocumentHasNoFindings) {
  appmodel::NscDocument doc;
  doc.base.present = true;
  doc.base.cleartext_permitted = false;
  appmodel::NscDomainConfig cfg;
  cfg.domain = "api.nscx.com";
  doc.domain_configs = {cfg};
  const auto apk =
      appmodel::AndroidPackageBuilder(Meta()).WithNscDocument(doc).Build();
  EXPECT_TRUE(AnalyzeNsc(apk).LintFindings().empty());
}

TEST(NscExtendedTest, OverridePinsStillReportedThroughLint) {
  appmodel::NscDomainConfig cfg;
  cfg.domain = "oops.nscx.com";
  cfg.pin_strings = {ValidPin(), ValidPin()};
  cfg.override_pins = true;
  const auto apk = appmodel::AndroidPackageBuilder(Meta()).WithNsc({cfg}).Build();
  const auto findings = AnalyzeNsc(apk).LintFindings();
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("overridePins"), std::string::npos);
}

}  // namespace
}  // namespace pinscope::staticanalysis

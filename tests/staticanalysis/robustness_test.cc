// Failure injection: the static pipeline must survive arbitrary corruption —
// bit-flipped certificates, truncated configs, scrambled binaries — without
// crashing or throwing. Real app stores serve plenty of malformed content.
#include <gtest/gtest.h>

#include "staticanalysis/static_report.h"
#include "store/generator.h"
#include "util/rng.h"

namespace pinscope::staticanalysis {
namespace {

const store::Ecosystem& Eco() {
  static const store::Ecosystem eco = [] {
    store::EcosystemConfig config;
    config.seed = 77;
    config.scale = 0.02;
    return store::Ecosystem::Generate(config);
  }();
  return eco;
}

appmodel::PackageFiles Mutate(const appmodel::PackageFiles& original,
                              util::Rng& rng) {
  appmodel::PackageFiles mutated;
  for (const auto& [path, content] : original.files()) {
    util::Bytes bytes = content;
    const int mutations = rng.UniformInt(0, 4);
    for (int i = 0; i < mutations && !bytes.empty(); ++i) {
      switch (rng.UniformInt(0, 2)) {
        case 0: {  // bit flip
          const std::size_t pos =
              static_cast<std::size_t>(rng.UniformU64(0, bytes.size() - 1));
          bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.UniformInt(0, 7));
          break;
        }
        case 1:  // truncation
          bytes.resize(bytes.size() / 2);
          break;
        case 2: {  // garbage insertion
          const std::size_t pos =
              static_cast<std::size_t>(rng.UniformU64(0, bytes.size()));
          bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                       {0xde, 0xad, 0xbe, 0xef});
          break;
        }
      }
    }
    mutated.Add(path, std::move(bytes));
  }
  return mutated;
}

class StaticRobustness : public ::testing::TestWithParam<int> {};

TEST_P(StaticRobustness, SurvivesCorruptedPackages) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  StaticAnalysisOptions opts;
  opts.ct_log = &Eco().ct_log();

  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const appmodel::App& original : Eco().apps(p)) {
      appmodel::App corrupted = original;
      corrupted.package = Mutate(original.package, rng);
      // Must not crash or throw, whatever the bytes look like.
      const StaticReport report = AnalyzeStatically(corrupted, opts);
      (void)report.PotentialPinning();
      (void)report.ConfigPinning();
      (void)report.EvidencePaths();
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticRobustness, ::testing::Values(1, 2, 3));

TEST(StaticRobustnessTest, EmptyPackage) {
  appmodel::App app;
  app.meta.app_id = "com.empty.app";
  app.meta.platform = appmodel::Platform::kAndroid;
  const StaticReport report = AnalyzeStatically(app);
  EXPECT_FALSE(report.PotentialPinning());
  EXPECT_FALSE(report.ConfigPinning());
}

TEST(StaticRobustnessTest, HugeGarbageFile) {
  appmodel::App app;
  app.meta.app_id = "com.garbage.app";
  app.meta.platform = appmodel::Platform::kAndroid;
  util::Rng rng(9);
  util::Bytes blob(200'000);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.UniformU64(0, 255));
  app.package.Add("assets/blob.bin", std::move(blob));
  const StaticReport report = AnalyzeStatically(app);
  EXPECT_EQ(report.scan.files_scanned, 1u);
}

}  // namespace
}  // namespace pinscope::staticanalysis

// Unit tests for the versioned on-disk cache container (DESIGN.md §15):
// header round trip, every rejection path (missing, foreign kind, version
// skew, truncation, flipped payload byte), atomic write-replace, and the
// little-endian payload codec. Carries the `stream` ctest label so it also
// runs under the sanitizer presets.
#include "util/cache_file.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

namespace pinscope::util {
namespace {

constexpr std::uint32_t kKind = 0x31545354;  // "TST1"
constexpr std::uint32_t kVersion = 3;

class CacheFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pinscope_cache_file_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string PathFor(const std::string& name) const {
    return (dir_ / name).string();
  }

  static Bytes SamplePayload() {
    Bytes payload;
    for (int i = 0; i < 300; ++i) {
      payload.push_back(static_cast<std::uint8_t>(i * 7));
    }
    return payload;
  }

  std::filesystem::path dir_;
};

TEST_F(CacheFileTest, RoundTripsPayloadBytes) {
  const std::string path = PathFor("cache.pscf");
  const Bytes payload = SamplePayload();
  ASSERT_TRUE(WriteCacheFile(path, kKind, kVersion, payload));

  const auto read = ReadCacheFile(path, kKind, kVersion);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, payload);
}

TEST_F(CacheFileTest, EmptyPayloadRoundTrips) {
  const std::string path = PathFor("empty.pscf");
  ASSERT_TRUE(WriteCacheFile(path, kKind, kVersion, {}));
  const auto read = ReadCacheFile(path, kKind, kVersion);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->empty());
}

TEST_F(CacheFileTest, MissingFileIsColdStart) {
  EXPECT_FALSE(ReadCacheFile(PathFor("absent.pscf"), kKind, kVersion)
                   .has_value());
}

TEST_F(CacheFileTest, ForeignKindIsRejected) {
  const std::string path = PathFor("kind.pscf");
  ASSERT_TRUE(WriteCacheFile(path, kKind, kVersion, SamplePayload()));
  EXPECT_FALSE(ReadCacheFile(path, kKind + 1, kVersion).has_value());
}

TEST_F(CacheFileTest, VersionSkewIsRejectedBothWays) {
  const std::string path = PathFor("version.pscf");
  ASSERT_TRUE(WriteCacheFile(path, kKind, kVersion, SamplePayload()));
  EXPECT_FALSE(ReadCacheFile(path, kKind, kVersion + 1).has_value());
  EXPECT_FALSE(ReadCacheFile(path, kKind, kVersion - 1).has_value());
}

TEST_F(CacheFileTest, TruncationAnywhereIsRejected) {
  const std::string path = PathFor("trunc.pscf");
  ASSERT_TRUE(WriteCacheFile(path, kKind, kVersion, SamplePayload()));
  const auto full = std::filesystem::file_size(path);
  // Cut mid-payload, mid-header, and to nothing.
  for (const std::uintmax_t keep : {full - 1, full / 2, std::uintmax_t{7},
                                    std::uintmax_t{0}}) {
    ASSERT_TRUE(WriteCacheFile(path, kKind, kVersion, SamplePayload()));
    std::filesystem::resize_file(path, keep);
    EXPECT_FALSE(ReadCacheFile(path, kKind, kVersion).has_value())
        << "kept " << keep << " of " << full << " bytes";
  }
}

TEST_F(CacheFileTest, FlippedPayloadByteFailsTheChecksum) {
  const std::string path = PathFor("corrupt.pscf");
  const Bytes payload = SamplePayload();
  ASSERT_TRUE(WriteCacheFile(path, kKind, kVersion, payload));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-1, std::ios::end);  // last payload byte
    const char flipped = static_cast<char>(payload.back() ^ 0x01);
    f.write(&flipped, 1);
  }
  EXPECT_FALSE(ReadCacheFile(path, kKind, kVersion).has_value());
}

TEST_F(CacheFileTest, RewriteReplacesAtomicallyAndLeavesNoTempFiles) {
  const std::string path = PathFor("replace.pscf");
  ASSERT_TRUE(WriteCacheFile(path, kKind, kVersion, SamplePayload()));
  Bytes second = {1, 2, 3};
  ASSERT_TRUE(WriteCacheFile(path, kKind, kVersion, second));

  const auto read = ReadCacheFile(path, kKind, kVersion);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, second);

  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);  // the destination only; every temp was renamed away
}

TEST_F(CacheFileTest, EqualPayloadsWriteIdenticalFiles) {
  const std::string a = PathFor("a.pscf");
  const std::string b = PathFor("b.pscf");
  ASSERT_TRUE(WriteCacheFile(a, kKind, kVersion, SamplePayload()));
  ASSERT_TRUE(WriteCacheFile(b, kKind, kVersion, SamplePayload()));
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(CacheFileCodecTest, RoundTripsEveryFieldType) {
  Bytes out;
  AppendU8(out, 0xAB);
  AppendU32(out, 0xDEADBEEFu);
  AppendU64(out, 0x0123456789ABCDEFull);
  AppendI64(out, -42);
  AppendString(out, "pin-string");
  AppendBlob(out, {9, 8, 7});
  AppendString(out, "");  // empty values must survive too

  ByteReader r(out);
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.String(), "pin-string");
  EXPECT_EQ(r.Blob(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.String(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(CacheFileCodecTest, OverReadTurnsStickyNotUndefined) {
  Bytes out;
  AppendU32(out, 5);
  ByteReader r(out);
  EXPECT_EQ(r.U32(), 5u);
  EXPECT_EQ(r.U64(), 0u);  // past the end: zero value, ok() drops
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.String(), "");  // stays zero-valued afterwards
  EXPECT_FALSE(r.ok());
}

TEST(CacheFileCodecTest, TruncatedLengthPrefixedStringFailsCleanly) {
  Bytes out;
  AppendString(out, "0123456789");
  out.resize(out.size() - 4);  // length says 10, only 6 bytes remain
  ByteReader r(out);
  EXPECT_EQ(r.String(), "");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace pinscope::util

#include "util/strings.h"

#include <gtest/gtest.h>

namespace pinscope::util {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, JoinInvertsSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, "--"), "x");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("AbC123.PEM"), "abc123.pem");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("sha256/abc", "sha256/"));
  EXPECT_FALSE(StartsWith("sha", "sha256/"));
  EXPECT_TRUE(EndsWith("cert.pem", ".pem"));
  EXPECT_FALSE(EndsWith("pem", ".pem"));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringsTest, Contains) {
  EXPECT_TRUE(Contains("hello world", "lo wo"));
  EXPECT_FALSE(Contains("hello", "world"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a{{x}}b{{x}}", "{{x}}", "1"), "a1b1");
  EXPECT_EQ(ReplaceAll("no placeholders", "{{x}}", "1"), "no placeholders");
  EXPECT_EQ(ReplaceAll("aaaa", "aa", "b"), "bb");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringsTest, Percent) {
  EXPECT_EQ(Percent(0.0817, 2), "8.17%");
  EXPECT_EQ(Percent(1.0, 1), "100.0%");
  EXPECT_EQ(Percent(0.0, 1), "0.0%");
}

}  // namespace
}  // namespace pinscope::util

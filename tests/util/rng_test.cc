#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace pinscope::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntThrowsOnInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformInt(5, 4), Error);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(19);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.WeightedIndex({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(RngTest, WeightedIndexRejectsDegenerateInput) {
  Rng rng(1);
  EXPECT_THROW(rng.WeightedIndex({}), Error);
  EXPECT_THROW(rng.WeightedIndex({0.0, 0.0}), Error);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(23);
  const auto sample = rng.SampleIndices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleIndicesClampsToPopulation) {
  Rng rng(29);
  EXPECT_EQ(rng.SampleIndices(5, 50).size(), 5u);
}

TEST(RngTest, ForkIsIndependentAndStable) {
  Rng base(31);
  Rng f1 = base.Fork("alpha");
  Rng f2 = base.Fork("alpha");
  Rng f3 = base.Fork("beta");
  EXPECT_EQ(f1.NextU64(), f2.NextU64());  // same label → same stream
  Rng f4 = base.Fork("beta");
  EXPECT_NE(f3.NextU64(), f1.NextU64());
  (void)f4;
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RngTest, IdentifierHasRequestedLength) {
  Rng rng(41);
  EXPECT_EQ(rng.Identifier(12).size(), 12u);
  EXPECT_EQ(rng.Identifier(0).size(), 0u);
}

TEST(StableHashTest, StableAndDiscriminating) {
  EXPECT_EQ(StableHash64("abc"), StableHash64("abc"));
  EXPECT_NE(StableHash64("abc"), StableHash64("abd"));
  EXPECT_NE(StableHash64(""), StableHash64("a"));
}

}  // namespace
}  // namespace pinscope::util

#include "util/hex.h"

#include <gtest/gtest.h>

namespace pinscope::util {
namespace {

TEST(HexTest, EncodesLowercase) {
  EXPECT_EQ(HexEncode({0x00, 0xff, 0x1a, 0xb2}), "00ff1ab2");
  EXPECT_EQ(HexEncode({}), "");
}

TEST(HexTest, DecodesBothCases) {
  EXPECT_EQ(*HexDecode("00ff1ab2"), (Bytes{0x00, 0xff, 0x1a, 0xb2}));
  EXPECT_EQ(*HexDecode("00FF1AB2"), (Bytes{0x00, 0xff, 0x1a, 0xb2}));
  EXPECT_EQ(*HexDecode(""), Bytes{});
}

TEST(HexTest, RejectsOddLength) { EXPECT_FALSE(HexDecode("abc").has_value()); }

TEST(HexTest, RejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").has_value());
  EXPECT_FALSE(HexDecode("0g").has_value());
}

TEST(HexTest, IsHexString) {
  EXPECT_TRUE(IsHexString("deadbeef"));
  EXPECT_TRUE(IsHexString("DEADBEEF"));
  EXPECT_FALSE(IsHexString(""));
  EXPECT_FALSE(IsHexString("xyz"));
}

class HexRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HexRoundTrip, RoundTrips) {
  Bytes data;
  for (std::size_t i = 0; i < GetParam(); ++i) {
    data.push_back(static_cast<std::uint8_t>(i * 101 + 7));
  }
  EXPECT_EQ(*HexDecode(HexEncode(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Lengths, HexRoundTrip,
                         ::testing::Values(0, 1, 2, 16, 20, 32, 64, 257));

}  // namespace
}  // namespace pinscope::util

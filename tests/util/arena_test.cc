// Arena contract tests: alignment guarantees, block growth, Reset reuse
// (steady-state allocation-freedom), and the ArenaAllocator adapter both
// arena-backed and in its null-arena global fallback. The whole suite also
// runs under the asan preset, which is what actually proves "no leaks":
// every arena byte must be reachable from the Arena until Reset/destruction.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace pinscope::util {
namespace {

bool IsAligned(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(/*block_bytes=*/256);
  // Mixed sizes/alignments; writing into each region catches overlap.
  struct Alloc {
    std::byte* p;
    std::size_t n;
    std::byte fill;
  };
  std::vector<Alloc> allocs;
  const std::size_t sizes[] = {1, 3, 8, 24, 100, 7, 64};
  const std::size_t aligns[] = {1, 2, 4, 8, 16, 1, 64};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    auto* p = static_cast<std::byte*>(arena.Allocate(sizes[i], aligns[i]));
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(IsAligned(p, aligns[i])) << "allocation " << i;
    const auto fill = static_cast<std::byte>(0xA0 + i);
    std::memset(p, static_cast<int>(fill), sizes[i]);
    allocs.push_back({p, sizes[i], fill});
  }
  for (const Alloc& a : allocs) {
    for (std::size_t j = 0; j < a.n; ++j) EXPECT_EQ(a.p[j], a.fill);
  }
  EXPECT_GE(arena.bytes_allocated(), 207u);  // sum of the sizes above
}

TEST(ArenaTest, OversizedRequestGetsItsOwnBlock) {
  Arena arena(/*block_bytes=*/128);
  void* small = arena.Allocate(16);
  ASSERT_NE(small, nullptr);
  // Far larger than the block size: must still succeed, in a grown block.
  auto* big = static_cast<std::byte*>(arena.Allocate(10'000, 64));
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(IsAligned(big, 64));
  std::memset(big, 0x5C, 10'000);
  EXPECT_GE(arena.block_count(), 2u);
}

TEST(ArenaTest, ZeroByteAllocationIsValid) {
  Arena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
  EXPECT_NE(arena.Allocate(0, 16), nullptr);
}

TEST(ArenaTest, ResetRewindsAndKeepsOneBlock) {
  Arena arena(/*block_bytes=*/128);
  for (int i = 0; i < 64; ++i) arena.Allocate(48);
  const std::size_t grown_blocks = arena.block_count();
  EXPECT_GT(grown_blocks, 1u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.block_count(), 1u);

  // Steady state: a same-shaped second flight must not grow the arena again
  // beyond what one retained block covers.
  void* first = arena.Allocate(48);
  ASSERT_NE(first, nullptr);
  arena.Reset();
  // After another reset the bump pointer rewinds to the same storage.
  EXPECT_EQ(arena.Allocate(48), first);
}

TEST(ArenaAllocatorTest, BacksStandardContainers) {
  Arena arena;
  using Alloc = ArenaAllocator<std::pair<const int, std::string>>;
  std::map<int, std::string, std::less<int>, Alloc> m{std::less<int>{},
                                                      Alloc(&arena)};
  for (int i = 0; i < 100; ++i) m.emplace(i, "value-" + std::to_string(i));
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.at(42), "value-42");
  EXPECT_GT(arena.bytes_allocated(), 0u);

  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999);
}

TEST(ArenaAllocatorTest, NullArenaFallsBackToHeap) {
  // Default-constructed allocator: containers work without any arena (the
  // deallocate path must actually free, which ASan verifies).
  std::vector<int, ArenaAllocator<int>> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(ArenaAllocator<int>().arena(), nullptr);
}

TEST(ArenaAllocatorTest, EqualityFollowsArenaIdentity) {
  Arena a;
  Arena b;
  EXPECT_EQ(ArenaAllocator<int>(&a), ArenaAllocator<char>(&a));
  EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>(&b));
  EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>(nullptr));
}

}  // namespace
}  // namespace pinscope::util

// The ParallelFor primitive: exact-once execution, exception aggregation,
// nesting, and stress, across the whole range of interesting thread counts.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace pinscope::util {
namespace {

class ParallelForTest : public ::testing::TestWithParam<int> {
 protected:
  ParallelOptions Opts(std::size_t grain = 1) const {
    ParallelOptions opts;
    opts.threads = GetParam();
    opts.grain = grain;
    return opts;
  }
};

TEST_P(ParallelForTest, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor(0, [&](std::size_t) { calls.fetch_add(1); }, Opts());
  EXPECT_EQ(calls.load(), 0);
}

TEST_P(ParallelForTest, FewerItemsThanThreadsRunsEachIndexOnce) {
  // n=3 with up to 16 requested threads: the pool must clamp to n and still
  // hit every index exactly once.
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, [&](std::size_t i) { hits[i].fetch_add(1); }, Opts());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ParallelForTest, EveryIndexRunsExactlyOnce) {
  constexpr std::size_t kN = 997;  // prime, so no grain divides it evenly
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); }, Opts(8));
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ParallelForTest, ThrowingBodyAggregatesFailuresInIndexOrder) {
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  try {
    ParallelFor(
        kN,
        [&](std::size_t i) {
          hits[i].fetch_add(1);
          if (i % 7 == 0) throw Error("index " + std::to_string(i) + " failed");
        },
        Opts());
    FAIL() << "expected ParallelError";
  } catch (const ParallelError& e) {
    const auto& failures = e.failures();
    ASSERT_EQ(failures.size(), 15u);  // 0, 7, ..., 98
    for (std::size_t k = 0; k < failures.size(); ++k) {
      EXPECT_EQ(failures[k].index, k * 7);
      EXPECT_EQ(failures[k].message,
                "index " + std::to_string(k * 7) + " failed");
    }
    EXPECT_NE(std::string(e.what()).find("15 index(es) threw"),
              std::string::npos);
  }
  // A failing sibling must not stop the other indices.
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ParallelForTest, NonStdExceptionIsCaptured) {
  try {
    ParallelFor(2, [](std::size_t i) { if (i == 1) throw 42; }, Opts());
    FAIL() << "expected ParallelError";
  } catch (const ParallelError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].index, 1u);
    EXPECT_EQ(e.failures()[0].message, "unknown exception");
  }
}

TEST_P(ParallelForTest, NestedParallelForIsSafe) {
  // Each call owns its worker threads, so nesting (the study's per-app loop
  // over the pipeline's two-phase loop) cannot deadlock on a shared pool.
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<std::size_t>> sums(kOuter);
  ParallelFor(
      kOuter,
      [&](std::size_t o) {
        ParallelFor(
            kInner, [&](std::size_t i) { sums[o].fetch_add(i + 1); }, Opts());
      },
      Opts());
  for (const auto& s : sums) EXPECT_EQ(s.load(), kInner * (kInner + 1) / 2);
}

TEST_P(ParallelForTest, StressTenThousandTinyTasks) {
  constexpr std::size_t kN = 10'000;
  std::atomic<std::size_t> sum{0};
  ParallelFor(kN, [&](std::size_t i) { sum.fetch_add(i); }, Opts(16));
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST_P(ParallelForTest, ParallelMapPreservesIndexOrder) {
  const std::vector<std::size_t> squares =
      ParallelMap(257, [](std::size_t i) { return i * i; }, Opts(4));
  ASSERT_EQ(squares.size(), 257u);
  for (std::size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelForTest,
                         ::testing::Values(0, 1, 2, 3, 4, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0
                                      ? std::string("hw")
                                      : "t" + std::to_string(info.param);
                         });

TEST(ResolveThreadsTest, ClampsAndDefaults) {
  EXPECT_EQ(ResolveThreads(4, 0), 0);    // empty range needs no workers
  EXPECT_EQ(ResolveThreads(4, 2), 2);    // never more workers than items
  EXPECT_EQ(ResolveThreads(4, 100), 4);  // explicit request honored
  EXPECT_EQ(ResolveThreads(1, 100), 1);
  EXPECT_GE(ResolveThreads(0, 100), 1);  // 0 = hardware concurrency, >= 1
}

}  // namespace
}  // namespace pinscope::util

// Unit + property tests for the bounded MPMC queue and the barrier-free
// pipeline scheduler (util/pipeline_scheduler.h): FIFO order per stage,
// blocking push at capacity, no task lost or duplicated across worker
// counts and queue depths, clean shutdown with in-flight work, failure
// isolation + retries, and per-item dependency ordering under a seeded
// random perturbation of stage timings.
#include "util/pipeline_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace pinscope::util {
namespace {

using namespace std::chrono_literals;

// --- BoundedMpmcQueue ----------------------------------------------------

TEST(BoundedMpmcQueueTest, PopsInPushOrderFifo) {
  BoundedMpmcQueue<int> queue(128);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(queue.TryPush(i));
  for (int i = 0; i < 100; ++i) {
    const auto popped = queue.TryPop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(*popped, i);
  }
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(BoundedMpmcQueueTest, TryPushRefusesWhenFull) {
  BoundedMpmcQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.Size(), 2u);
}

TEST(BoundedMpmcQueueTest, PushBlocksAtCapacityUntilAPopMakesRoom) {
  BoundedMpmcQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));

  std::atomic<bool> third_pushed{false};
  std::thread pusher([&] {
    ASSERT_TRUE(queue.Push(3));  // must block: the queue is at capacity
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(third_pushed.load());  // still blocked

  EXPECT_EQ(queue.Pop().value(), 1);  // makes room; the pusher completes
  pusher.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 3);
}

TEST(BoundedMpmcQueueTest, PopBlocksUntilAPushArrives) {
  BoundedMpmcQueue<int> queue(4);
  std::atomic<int> popped{0};
  std::thread popper([&] { popped.store(queue.Pop().value()); });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(popped.load(), 0);
  ASSERT_TRUE(queue.Push(42));
  popper.join();
  EXPECT_EQ(popped.load(), 42);
}

TEST(BoundedMpmcQueueTest, CloseDrainsInFlightItemsThenEndsStreams) {
  BoundedMpmcQueue<int> queue(8);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));     // closed: push refused
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.Pop().value(), 1);  // in-flight items still drain
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());  // then end-of-stream
}

TEST(BoundedMpmcQueueTest, CloseWakesBlockedPushersAndPoppers) {
  BoundedMpmcQueue<int> full(1);
  ASSERT_TRUE(full.Push(1));
  std::thread blocked_pusher([&] { EXPECT_FALSE(full.Push(2)); });
  BoundedMpmcQueue<int> empty(1);
  std::thread blocked_popper([&] { EXPECT_FALSE(empty.Pop().has_value()); });
  std::this_thread::sleep_for(20ms);
  full.Close();
  empty.Close();
  blocked_pusher.join();
  blocked_popper.join();
}

TEST(BoundedMpmcQueueTest, TracksPeakSizeHighWaterMark) {
  BoundedMpmcQueue<int> queue(8);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  ASSERT_TRUE(queue.TryPush(3));
  (void)queue.TryPop();
  (void)queue.TryPop();
  ASSERT_TRUE(queue.TryPush(4));
  EXPECT_EQ(queue.PeakSize(), 3u);
  EXPECT_EQ(queue.Size(), 2u);
}

TEST(BoundedMpmcQueueTest, ConcurrentProducersAndConsumersLoseNothing) {
  BoundedMpmcQueue<int> queue(4);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::atomic<int> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (const auto v = queue.Pop()) {
        sum.fetch_add(*v);
        count.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// --- RunPipeline ---------------------------------------------------------

/// Per-(item, stage) execution counter matrix.
struct ExecutionMatrix {
  explicit ExecutionMatrix(std::size_t n, std::size_t stages)
      : counts(n * stages), n_stages(stages) {}
  std::vector<std::atomic<int>> counts;
  std::size_t n_stages;

  std::atomic<int>& at(std::size_t item, std::size_t stage) {
    return counts[item * n_stages + stage];
  }
};

std::vector<PipelineStage> CountingStages(ExecutionMatrix& matrix,
                                          std::size_t n_stages) {
  std::vector<PipelineStage> stages;
  for (std::size_t s = 0; s < n_stages; ++s) {
    stages.push_back({"stage" + std::to_string(s),
                      [&matrix, s](std::size_t i) { matrix.at(i, s)++; }});
  }
  return stages;
}

class PipelineThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineThreadsTest, NoTaskLostOrDuplicatedAtAnyQueueDepth) {
  const int threads = GetParam();
  constexpr std::size_t kItems = 200;
  constexpr std::size_t kStages = 3;
  for (const std::size_t depth : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
    SCOPED_TRACE("depth=" + std::to_string(depth));
    ExecutionMatrix matrix(kItems, kStages);
    PipelineOptions options;
    options.threads = threads;
    options.queue_depth = depth;
    const PipelineResult result =
        RunPipeline(kItems, CountingStages(matrix, kStages), options);
    EXPECT_TRUE(result.failures.empty());
    for (std::size_t i = 0; i < kItems; ++i) {
      for (std::size_t s = 0; s < kStages; ++s) {
        EXPECT_EQ(matrix.at(i, s).load(), 1) << "item " << i << " stage " << s;
      }
    }
  }
}

TEST_P(PipelineThreadsTest, DependencyOrderHoldsUnderSeededRandomDelays) {
  // Every stage of every item sleeps a seeded-random sliver, scrambling
  // completion order across items — but each item's own chain must still
  // execute stage 0 → 1 → 2 in order. The global tick counter captures the
  // observed order.
  const int threads = GetParam();
  constexpr std::size_t kItems = 48;
  constexpr std::size_t kStages = 3;
  Rng rng(1234);
  std::vector<int> delay_us(kItems * kStages);
  for (int& d : delay_us) d = rng.UniformInt(0, 300);

  std::atomic<std::uint64_t> ticks{0};
  std::vector<std::atomic<std::uint64_t>> started(kItems * kStages);
  std::vector<PipelineStage> stages;
  for (std::size_t s = 0; s < kStages; ++s) {
    stages.push_back({"stage" + std::to_string(s), [&, s](std::size_t i) {
                        started[i * kStages + s] = ticks.fetch_add(1) + 1;
                        std::this_thread::sleep_for(std::chrono::microseconds(
                            delay_us[i * kStages + s]));
                      }});
  }
  PipelineOptions options;
  options.threads = threads;
  options.queue_depth = 4;
  const PipelineResult result = RunPipeline(kItems, stages, options);
  EXPECT_TRUE(result.failures.empty());
  for (std::size_t i = 0; i < kItems; ++i) {
    for (std::size_t s = 1; s < kStages; ++s) {
      EXPECT_LT(started[i * kStages + s - 1].load(),
                started[i * kStages + s].load())
          << "item " << i << ": stage " << s << " ran before stage " << s - 1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Threads, PipelineThreadsTest,
    ::testing::Values(1, 4,
                      static_cast<int>(std::max(
                          2u, std::thread::hardware_concurrency()))),
    [](const ::testing::TestParamInfo<int>& info) {
      return "threads" + std::to_string(info.param);
    });

TEST(PipelineSchedulerTest, CleanShutdownWithInFlightWork) {
  // Slow stages keep work in flight right up to the end; RunPipeline must
  // not return until every chain has fully drained, and join all workers.
  constexpr std::size_t kItems = 16;
  std::atomic<int> completed{0};
  std::vector<PipelineStage> stages = {
      {"slow", [&](std::size_t) { std::this_thread::sleep_for(2ms); }},
      {"finish", [&](std::size_t) {
         std::this_thread::sleep_for(1ms);
         completed.fetch_add(1);
       }},
  };
  PipelineOptions options;
  options.threads = 4;
  options.queue_depth = 2;
  const PipelineResult result = RunPipeline(kItems, stages, options);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(completed.load(), static_cast<int>(kItems));
}

TEST(PipelineSchedulerTest, StageFailureSkipsLaterStagesOfThatItemOnly) {
  constexpr std::size_t kItems = 20;
  ExecutionMatrix matrix(kItems, 2);
  std::vector<PipelineStage> stages = {
      {"flaky", [&](std::size_t i) {
         matrix.at(i, 0)++;
         if (i == 3 || i == 11) throw Error("boom " + std::to_string(i));
       }},
      {"after", [&](std::size_t i) { matrix.at(i, 1)++; }},
  };
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto& c : matrix.counts) c.store(0);
    PipelineOptions options;
    options.threads = threads;
    const PipelineResult result = RunPipeline(kItems, stages, options);
    ASSERT_EQ(result.failures.size(), 2u);
    // Failures come back sorted by item regardless of completion order.
    EXPECT_EQ(result.failures[0].item, 3u);
    EXPECT_EQ(result.failures[0].stage_name, "flaky");
    EXPECT_EQ(result.failures[0].message, "boom 3");
    EXPECT_EQ(result.failures[1].item, 11u);
    for (std::size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(matrix.at(i, 0).load(), 1);
      EXPECT_EQ(matrix.at(i, 1).load(), (i == 3 || i == 11) ? 0 : 1) << i;
    }
  }
}

TEST(PipelineSchedulerTest, RetriesRecoverTransientFailures) {
  std::atomic<int> attempts{0};
  std::vector<PipelineStage> stages = {
      {"transient", [&](std::size_t) {
         if (attempts.fetch_add(1) < 2) throw Error("transient");
       }},
  };
  PipelineOptions options;
  options.threads = 1;
  options.max_stage_retries = 2;
  const PipelineResult result = RunPipeline(1, stages, options);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(result.retries, 2u);
}

TEST(PipelineSchedulerTest, FaultPlanInjectsAtStageEntry) {
  SchedulerFaultPlan plan;
  plan.Set(/*stage=*/0, /*item=*/2, {.delay = 0ms, .fail_times = 1});
  std::atomic<int> ran{0};
  std::vector<PipelineStage> stages = {
      {"only", [&](std::size_t) { ran.fetch_add(1); }},
  };
  PipelineOptions options;
  options.threads = 1;
  options.faults = &plan;
  const PipelineResult first = RunPipeline(4, stages, options);
  ASSERT_EQ(first.failures.size(), 1u);
  EXPECT_EQ(first.failures[0].item, 2u);
  // The faulted item's body never ran: injection precedes the stage.
  EXPECT_EQ(ran.load(), 3);

  // fail_times exhausted: the same plan lets a second run through.
  const PipelineResult second = RunPipeline(4, stages, options);
  EXPECT_TRUE(second.failures.empty());
}

TEST(PipelineSchedulerTest, EmptyInputsAreNoOps) {
  std::vector<PipelineStage> stages = {
      {"stage", [](std::size_t) { FAIL() << "must not run"; }},
  };
  EXPECT_TRUE(RunPipeline(0, stages, {}).failures.empty());
  EXPECT_TRUE(RunPipeline(5, {}, {}).failures.empty());
}

TEST(PipelineSchedulerTest, ReportsBackpressureWhenTheQueueSaturates) {
  // Depth 1 with several workers forces continuations to run inline.
  std::vector<PipelineStage> stages = {
      {"a", [](std::size_t) { std::this_thread::sleep_for(200us); }},
      {"b", [](std::size_t) { std::this_thread::sleep_for(200us); }},
      {"c", [](std::size_t) {}},
  };
  PipelineOptions options;
  options.threads = 4;
  options.queue_depth = 1;
  const PipelineResult result = RunPipeline(64, stages, options);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_GE(result.peak_queue_depth, 1u);
  EXPECT_LE(result.peak_queue_depth, 1u);  // the bound is a hard bound
}

}  // namespace
}  // namespace pinscope::util

#include "util/clock.h"

#include <gtest/gtest.h>

namespace pinscope::util {
namespace {

TEST(SimClockTest, StartsAtEpochByDefault) {
  EXPECT_EQ(SimClock().Now(), kStudyEpoch);
  EXPECT_EQ(SimClock(42).Now(), 42);
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  clock.Advance(1'000);
  EXPECT_EQ(clock.Now(), 1'000);
  clock.Advance(-500);  // ignored: time never goes backwards
  EXPECT_EQ(clock.Now(), 1'000);
  clock.Advance(0);
  EXPECT_EQ(clock.Now(), 1'000);
}

TEST(SimClockTest, UnitConstantsAreConsistent) {
  EXPECT_EQ(kMillisPerDay, 86'400 * kMillisPerSecond);
  EXPECT_EQ(kMillisPerYear, 365 * kMillisPerDay);
}

}  // namespace
}  // namespace pinscope::util

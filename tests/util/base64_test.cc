#include "util/base64.h"

#include <gtest/gtest.h>

namespace pinscope::util {
namespace {

TEST(Base64Test, EncodesRfc4648Vectors) {
  EXPECT_EQ(Base64Encode(ToBytes("")), "");
  EXPECT_EQ(Base64Encode(ToBytes("f")), "Zg==");
  EXPECT_EQ(Base64Encode(ToBytes("fo")), "Zm8=");
  EXPECT_EQ(Base64Encode(ToBytes("foo")), "Zm9v");
  EXPECT_EQ(Base64Encode(ToBytes("foob")), "Zm9vYg==");
  EXPECT_EQ(Base64Encode(ToBytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode(ToBytes("foobar")), "Zm9vYmFy");
}

TEST(Base64Test, DecodesRfc4648Vectors) {
  EXPECT_EQ(ToString(*Base64Decode("Zm9vYmFy")), "foobar");
  EXPECT_EQ(ToString(*Base64Decode("Zm9vYg==")), "foob");
  EXPECT_EQ(ToString(*Base64Decode("Zg==")), "f");
  EXPECT_EQ(ToString(*Base64Decode("")), "");
}

TEST(Base64Test, DecodesUnpaddedInput) {
  EXPECT_EQ(ToString(*Base64Decode("Zm9vYg")), "foob");
  EXPECT_EQ(ToString(*Base64Decode("Zg")), "f");
}

TEST(Base64Test, RejectsIllegalCharacters) {
  EXPECT_FALSE(Base64Decode("Zm9v!mFy").has_value());
  EXPECT_FALSE(Base64Decode("Zm9v YmFy").has_value());
  EXPECT_FALSE(Base64Decode("Zm9v\nYmFy").has_value());
}

TEST(Base64Test, RejectsImpossibleLength) {
  // A single leftover sextet cannot encode a byte.
  EXPECT_FALSE(Base64Decode("A").has_value());
  EXPECT_FALSE(Base64Decode("AAAAA").has_value());
}

TEST(Base64Test, IsBase64String) {
  EXPECT_TRUE(IsBase64String("Zm9vYmFy"));
  EXPECT_TRUE(IsBase64String("Zm9vYg=="));
  EXPECT_TRUE(IsBase64String("ab+/09=="));
  EXPECT_FALSE(IsBase64String(""));
  EXPECT_FALSE(IsBase64String("sp ace"));
  EXPECT_FALSE(IsBase64String("===="));  // too much padding
}

// Property: decode(encode(x)) == x for arbitrary binary buffers.
class Base64RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base64RoundTrip, RoundTripsBinary) {
  Bytes data;
  data.reserve(GetParam());
  for (std::size_t i = 0; i < GetParam(); ++i) {
    data.push_back(static_cast<std::uint8_t>((i * 37 + 11) & 0xff));
  }
  const auto decoded = Base64Decode(Base64Encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Base64RoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 31, 32, 33, 255,
                                           256, 1000));

}  // namespace
}  // namespace pinscope::util

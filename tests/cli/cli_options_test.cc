// CLI flag-grammar suite for pinscope::cli::ParseArgs — both `--flag value`
// and `--flag=value` spellings, defaults, and bad-value rejection.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "cli/cli_options.h"

namespace pinscope::cli {
namespace {

std::optional<CliOptions> Parse(std::vector<std::string> args) {
  std::vector<const char*> argv = {"pinscope"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  return ParseArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseArgsTest, DefaultsMatchDocumentedHelp) {
  const auto opts = Parse({"study"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->command, "study");
  EXPECT_TRUE(opts->positional.empty());
  EXPECT_DOUBLE_EQ(opts->scale, 0.1);
  EXPECT_EQ(opts->seed, 42u);
  EXPECT_EQ(opts->threads, 0);
  EXPECT_EQ(opts->scheduler, "pipeline");
  EXPECT_EQ(opts->queue_depth, 0);
  EXPECT_TRUE(opts->scan_cache);
  EXPECT_TRUE(opts->sim_cache);
  EXPECT_TRUE(opts->summary);
  EXPECT_TRUE(opts->json_path.empty());
  EXPECT_TRUE(opts->csv_path.empty());
  EXPECT_TRUE(opts->metrics_path.empty());
  EXPECT_TRUE(opts->trace_path.empty());
  EXPECT_TRUE(opts->log_path.empty());
  EXPECT_EQ(opts->log_level, obs::Severity::kInfo);
  EXPECT_TRUE(opts->report_path.empty());
  EXPECT_TRUE(opts->cache_dir.empty());
  EXPECT_EQ(opts->snapshots, 0);
  EXPECT_FALSE(opts->incremental);
}

TEST(ParseArgsTest, NoCommandIsRejected) {
  EXPECT_FALSE(Parse({}).has_value());
}

TEST(ParseArgsTest, AcceptsCoreStudyFlags) {
  const auto opts = Parse({"study", "--scale", "0.25", "--seed", "9",
                           "--threads", "3", "--json", "a.jsonl", "--csv",
                           "b.csv"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_DOUBLE_EQ(opts->scale, 0.25);
  EXPECT_EQ(opts->seed, 9u);
  EXPECT_EQ(opts->threads, 3);
  EXPECT_EQ(opts->json_path, "a.jsonl");
  EXPECT_EQ(opts->csv_path, "b.csv");
}

TEST(ParseArgsTest, OutputFlagsAcceptBothSpellings) {
  for (const auto& args : std::vector<std::vector<std::string>>{
           {"study", "--metrics-out", "m.json", "--trace-out", "t.json",
            "--log-out", "e.jsonl", "--report-out", "r.md"},
           {"study", "--metrics-out=m.json", "--trace-out=t.json",
            "--log-out=e.jsonl", "--report-out=r.md"}}) {
    const auto opts = Parse(args);
    ASSERT_TRUE(opts.has_value());
    EXPECT_EQ(opts->metrics_path, "m.json");
    EXPECT_EQ(opts->trace_path, "t.json");
    EXPECT_EQ(opts->log_path, "e.jsonl");
    EXPECT_EQ(opts->report_path, "r.md");
  }
}

TEST(ParseArgsTest, OnOffFlagsAcceptBothSpellings) {
  const auto spaced = Parse({"study", "--scan-cache", "off", "--sim-cache",
                             "off", "--summary", "off"});
  ASSERT_TRUE(spaced.has_value());
  EXPECT_FALSE(spaced->scan_cache);
  EXPECT_FALSE(spaced->sim_cache);
  EXPECT_FALSE(spaced->summary);

  const auto eq = Parse({"study", "--scan-cache=off", "--sim-cache=on",
                         "--summary=off"});
  ASSERT_TRUE(eq.has_value());
  EXPECT_FALSE(eq->scan_cache);
  EXPECT_TRUE(eq->sim_cache);
  EXPECT_FALSE(eq->summary);
}

TEST(ParseArgsTest, SchedulerFlagsAcceptBothSpellings) {
  const auto spaced =
      Parse({"study", "--scheduler", "phases", "--queue-depth", "8"});
  ASSERT_TRUE(spaced.has_value());
  EXPECT_EQ(spaced->scheduler, "phases");
  EXPECT_EQ(spaced->queue_depth, 8);

  const auto eq = Parse({"study", "--scheduler=pipeline", "--queue-depth=0"});
  ASSERT_TRUE(eq.has_value());
  EXPECT_EQ(eq->scheduler, "pipeline");
  EXPECT_EQ(eq->queue_depth, 0);
}

TEST(ParseArgsTest, LogLevelAcceptsEverySeverity) {
  for (const char* level : {"debug", "info", "decision", "warn", "error"}) {
    SCOPED_TRACE(level);
    const auto opts = Parse({"study", std::string("--log-level=") + level});
    ASSERT_TRUE(opts.has_value());
    EXPECT_EQ(obs::SeverityName(opts->log_level), level);
  }
  const auto spaced = Parse({"study", "--log-level", "decision"});
  ASSERT_TRUE(spaced.has_value());
  EXPECT_EQ(spaced->log_level, obs::Severity::kDecision);
}

TEST(ParseArgsTest, RejectsBadValues) {
  EXPECT_FALSE(Parse({"study", "--log-level", "verbose"}).has_value());
  EXPECT_FALSE(Parse({"study", "--log-level="}).has_value());
  EXPECT_FALSE(Parse({"study", "--scan-cache", "maybe"}).has_value());
  EXPECT_FALSE(Parse({"study", "--summary=yes"}).has_value());
  EXPECT_FALSE(Parse({"study", "--threads", "-1"}).has_value());
  EXPECT_FALSE(Parse({"study", "--scheduler", "greedy"}).has_value());
  EXPECT_FALSE(Parse({"study", "--scheduler="}).has_value());
  EXPECT_FALSE(Parse({"study", "--queue-depth", "-2"}).has_value());
  EXPECT_FALSE(Parse({"study", "--queue-depth", "lots"}).has_value());
  EXPECT_FALSE(Parse({"study", "--scale", "0"}).has_value());
  EXPECT_FALSE(Parse({"study", "--scale", "1.5"}).has_value());
}

TEST(ParseArgsTest, RejectsMissingAndEmptyValues) {
  EXPECT_FALSE(Parse({"study", "--metrics-out"}).has_value());
  EXPECT_FALSE(Parse({"study", "--metrics-out="}).has_value());
  EXPECT_FALSE(Parse({"study", "--trace-out"}).has_value());
  EXPECT_FALSE(Parse({"study", "--log-out"}).has_value());
  EXPECT_FALSE(Parse({"study", "--log-out="}).has_value());
  EXPECT_FALSE(Parse({"study", "--report-out"}).has_value());
  EXPECT_FALSE(Parse({"study", "--seed"}).has_value());
}

TEST(ParseArgsTest, StreamingFlagsAcceptBothSpellings) {
  for (const auto& args : std::vector<std::vector<std::string>>{
           {"study", "--cache-dir", "/tmp/pscache", "--snapshot", "3",
            "--incremental", "on"},
           {"study", "--cache-dir=/tmp/pscache", "--snapshot=3",
            "--incremental=on"}}) {
    const auto opts = Parse(args);
    ASSERT_TRUE(opts.has_value());
    EXPECT_EQ(opts->cache_dir, "/tmp/pscache");
    EXPECT_EQ(opts->snapshots, 3);
    EXPECT_TRUE(opts->incremental);
  }
  const auto off = Parse({"study", "--snapshot", "0", "--incremental", "off"});
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->snapshots, 0);
  EXPECT_FALSE(off->incremental);
}

TEST(ParseArgsTest, StreamingFlagsRejectBadValues) {
  EXPECT_FALSE(Parse({"study", "--cache-dir"}).has_value());
  EXPECT_FALSE(Parse({"study", "--cache-dir="}).has_value());
  EXPECT_FALSE(Parse({"study", "--snapshot"}).has_value());
  EXPECT_FALSE(Parse({"study", "--snapshot", "-1"}).has_value());
  EXPECT_FALSE(Parse({"study", "--snapshot", "two"}).has_value());
  EXPECT_FALSE(Parse({"study", "--incremental", "maybe"}).has_value());
}

TEST(ParseArgsTest, TelemetryDefaultsAreOffAndQuiet) {
  const auto opts = Parse({"study"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->progress, "off");
  EXPECT_TRUE(opts->heartbeat_path.empty());
  EXPECT_EQ(opts->telemetry_interval_ms, 250);
}

TEST(ParseArgsTest, TelemetryFlagsAcceptBothSpellings) {
  for (const auto& args : std::vector<std::vector<std::string>>{
           {"study", "--progress", "plain", "--heartbeat-out", "hb.jsonl",
            "--telemetry-interval-ms", "50"},
           {"study", "--progress=plain", "--heartbeat-out=hb.jsonl",
            "--telemetry-interval-ms=50"}}) {
    const auto opts = Parse(args);
    ASSERT_TRUE(opts.has_value());
    EXPECT_EQ(opts->progress, "plain");
    EXPECT_EQ(opts->heartbeat_path, "hb.jsonl");
    EXPECT_EQ(opts->telemetry_interval_ms, 50);
  }
  for (const char* mode : {"off", "plain", "tty"}) {
    SCOPED_TRACE(mode);
    const auto opts = Parse({"study", std::string("--progress=") + mode});
    ASSERT_TRUE(opts.has_value());
    EXPECT_EQ(opts->progress, mode);
  }
}

TEST(ParseArgsTest, TelemetryFlagsRejectBadValues) {
  EXPECT_FALSE(Parse({"study", "--progress", "bar"}).has_value());
  EXPECT_FALSE(Parse({"study", "--progress", "Plain"}).has_value());
  EXPECT_FALSE(Parse({"study", "--progress="}).has_value());
  EXPECT_FALSE(Parse({"study", "--progress"}).has_value());
  EXPECT_FALSE(Parse({"study", "--heartbeat-out"}).has_value());
  EXPECT_FALSE(Parse({"study", "--heartbeat-out="}).has_value());
  EXPECT_FALSE(Parse({"study", "--telemetry-interval-ms", "0"}).has_value());
  EXPECT_FALSE(Parse({"study", "--telemetry-interval-ms", "-5"}).has_value());
  EXPECT_FALSE(Parse({"study", "--telemetry-interval-ms", "soon"}).has_value());
}

TEST(ParseArgsTest, AutopsyDefaultsAreOff) {
  const auto opts = Parse({"study"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_TRUE(opts->perf_report_path.empty());
  EXPECT_TRUE(opts->folded_path.empty());
  EXPECT_EQ(opts->timeline_cap, 8192);
}

TEST(ParseArgsTest, AutopsyCommandParsesWithItsFlags) {
  const auto opts = Parse({"autopsy", "--scale", "0.05", "--threads", "4",
                           "--perf-report-out", "perf.md", "--folded-out",
                           "stacks.folded", "--timeline-cap", "256"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->command, "autopsy");
  EXPECT_DOUBLE_EQ(opts->scale, 0.05);
  EXPECT_EQ(opts->threads, 4);
  EXPECT_EQ(opts->perf_report_path, "perf.md");
  EXPECT_EQ(opts->folded_path, "stacks.folded");
  EXPECT_EQ(opts->timeline_cap, 256);
}

TEST(ParseArgsTest, AutopsyFlagsAcceptBothSpellings) {
  for (const auto& args : std::vector<std::vector<std::string>>{
           {"study", "--perf-report-out", "perf.md", "--folded-out", "f.txt",
            "--timeline-cap", "1024"},
           {"study", "--perf-report-out=perf.md", "--folded-out=f.txt",
            "--timeline-cap=1024"}}) {
    const auto opts = Parse(args);
    ASSERT_TRUE(opts.has_value());
    EXPECT_EQ(opts->perf_report_path, "perf.md");
    EXPECT_EQ(opts->folded_path, "f.txt");
    EXPECT_EQ(opts->timeline_cap, 1024);
  }
}

TEST(ParseArgsTest, AutopsyFlagsRejectBadValues) {
  EXPECT_FALSE(Parse({"study", "--perf-report-out"}).has_value());
  EXPECT_FALSE(Parse({"study", "--perf-report-out="}).has_value());
  EXPECT_FALSE(Parse({"study", "--folded-out"}).has_value());
  EXPECT_FALSE(Parse({"study", "--folded-out="}).has_value());
  EXPECT_FALSE(Parse({"study", "--timeline-cap"}).has_value());
  EXPECT_FALSE(Parse({"study", "--timeline-cap", "0"}).has_value());
  EXPECT_FALSE(Parse({"study", "--timeline-cap", "-8"}).has_value());
  EXPECT_FALSE(Parse({"study", "--timeline-cap", "plenty"}).has_value());
}

TEST(ParseArgsTest, RejectsUnknownOptions) {
  EXPECT_FALSE(Parse({"study", "--log-format", "jsonl"}).has_value());
  EXPECT_FALSE(Parse({"study", "--bogus"}).has_value());
}

TEST(ParseArgsTest, CollectsPositionalArguments) {
  const auto opts = Parse({"audit", "com.example.app", "--seed", "7"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->command, "audit");
  ASSERT_EQ(opts->positional.size(), 1u);
  EXPECT_EQ(opts->positional[0], "com.example.app");
  EXPECT_EQ(opts->seed, 7u);
}

}  // namespace
}  // namespace pinscope::cli

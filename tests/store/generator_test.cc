#include "store/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "appmodel/ios_package.h"

namespace pinscope::store {
namespace {

using appmodel::Platform;

// One shared small ecosystem for all generator tests (generation is the
// expensive part; analyses are cheap).
const Ecosystem& SmallEco() {
  static const Ecosystem eco = [] {
    EcosystemConfig config;
    config.seed = 7;
    config.scale = 0.08;
    return Ecosystem::Generate(config);
  }();
  return eco;
}

TEST(GeneratorTest, DatasetSizesScale) {
  const auto& eco = SmallEco();
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    EXPECT_NEAR(static_cast<double>(eco.dataset(DatasetId::kCommon, p).size()),
                575 * 0.08, 6.0);
    EXPECT_NEAR(static_cast<double>(eco.dataset(DatasetId::kPopular, p).size()),
                1000 * 0.08, 6.0);
    EXPECT_NEAR(static_cast<double>(eco.dataset(DatasetId::kRandom, p).size()),
                1000 * 0.08, 6.0);
  }
}

TEST(GeneratorTest, GenerationIsDeterministic) {
  EcosystemConfig config;
  config.seed = 21;
  config.scale = 0.02;
  const Ecosystem a = Ecosystem::Generate(config);
  const Ecosystem b = Ecosystem::Generate(config);
  ASSERT_EQ(a.apps(Platform::kAndroid).size(), b.apps(Platform::kAndroid).size());
  for (std::size_t i = 0; i < a.apps(Platform::kAndroid).size(); ++i) {
    const auto& x = a.apps(Platform::kAndroid)[i];
    const auto& y = b.apps(Platform::kAndroid)[i];
    EXPECT_EQ(x.meta.app_id, y.meta.app_id);
    EXPECT_EQ(x.package.size(), y.package.size());
    EXPECT_EQ(x.behavior.destinations.size(), y.behavior.destinations.size());
  }
}

TEST(GeneratorTest, CommonPairsShareBrandAndCategoryMapping) {
  const auto& eco = SmallEco();
  ASSERT_FALSE(eco.common_pairs().empty());
  for (const CommonPair& pair : eco.common_pairs()) {
    const auto& a = eco.apps(Platform::kAndroid)[pair.android_index];
    const auto& i = eco.apps(Platform::kIos)[pair.ios_index];
    EXPECT_EQ(a.meta.display_name, i.meta.display_name);
    EXPECT_EQ(a.meta.developer_org, i.meta.developer_org);
    EXPECT_NE(a.meta.app_id, i.meta.app_id);
  }
}

TEST(GeneratorTest, ConsistencyClassesMatchBehaviorGroundTruth) {
  const auto& eco = SmallEco();
  for (const CommonPair& pair : eco.common_pairs()) {
    const bool a_pins =
        eco.apps(Platform::kAndroid)[pair.android_index].behavior.PinsAtRuntime();
    const bool i_pins =
        eco.apps(Platform::kIos)[pair.ios_index].behavior.PinsAtRuntime();
    switch (pair.cls) {
      case ConsistencyClass::kNotPinning:
        EXPECT_FALSE(a_pins);
        EXPECT_FALSE(i_pins);
        break;
      case ConsistencyClass::kConsistentIdentical:
      case ConsistencyClass::kConsistentPartial:
      case ConsistencyClass::kInconsistentBoth:
      case ConsistencyClass::kInconclusiveBoth:
        EXPECT_TRUE(a_pins);
        EXPECT_TRUE(i_pins);
        break;
      case ConsistencyClass::kAndroidOnlyInconsistent:
      case ConsistencyClass::kAndroidOnlyInconclusive:
        EXPECT_TRUE(a_pins);
        EXPECT_FALSE(i_pins);
        break;
      case ConsistencyClass::kIosOnlyInconsistent:
      case ConsistencyClass::kIosOnlyInconclusive:
        EXPECT_FALSE(a_pins);
        EXPECT_TRUE(i_pins);
        break;
    }
  }
}

TEST(GeneratorTest, IdenticalPairsPinTheSameDomains) {
  const auto& eco = SmallEco();
  for (const CommonPair& pair : eco.common_pairs()) {
    if (pair.cls != ConsistencyClass::kConsistentIdentical) continue;
    const auto a = eco.apps(Platform::kAndroid)[pair.android_index]
                       .behavior.PinnedHostnames();
    const auto i =
        eco.apps(Platform::kIos)[pair.ios_index].behavior.PinnedHostnames();
    EXPECT_EQ(std::set<std::string>(a.begin(), a.end()),
              std::set<std::string>(i.begin(), i.end()));
  }
}

TEST(GeneratorTest, PinnedDestinationsHaveMatchingServersAndPins) {
  const auto& eco = SmallEco();
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    for (const auto& app : eco.apps(p)) {
      for (const auto& dest : app.behavior.destinations) {
        const appmodel::ServerInfo* srv = eco.world().Find(dest.hostname);
        ASSERT_NE(srv, nullptr) << dest.hostname;
        if (!dest.pinned) continue;
        ASSERT_FALSE(dest.pins.empty());
        bool matches = false;
        for (const auto& cert : srv->endpoint.chain) {
          if (dest.pins.front().Matches(cert)) matches = true;
        }
        EXPECT_TRUE(matches) << app.meta.app_id << " → " << dest.hostname;
      }
    }
  }
}

TEST(GeneratorTest, TruthQuotasRoughlyHold) {
  const auto& eco = SmallEco();
  // Android popular: ~67·scale runtime pinners.
  const Dataset& pop = eco.dataset(DatasetId::kPopular, Platform::kAndroid);
  int pinning = 0, static_only = 0, nsc = 0;
  for (std::size_t idx : pop.app_indices) {
    const AppTruth& t = eco.truth(Platform::kAndroid, idx);
    if (t.runtime_pinning) ++pinning;
    if (t.static_only) ++static_only;
    if (t.nsc_pins) ++nsc;
  }
  EXPECT_NEAR(pinning, 67 * 0.08, 3.0);
  EXPECT_NEAR(static_only, 130 * 0.08, 4.0);
  EXPECT_GE(nsc, 1);
  EXPECT_LE(nsc, pinning);
}

TEST(GeneratorTest, IosPinsMoreThanAndroidInRandomSet) {
  const auto& eco = SmallEco();
  auto count = [&](Platform p) {
    int n = 0;
    for (std::size_t idx : eco.dataset(DatasetId::kRandom, p).app_indices) {
      if (eco.truth(p, idx).runtime_pinning) ++n;
    }
    return n;
  };
  EXPECT_GT(count(Platform::kIos), count(Platform::kAndroid));
}

TEST(GeneratorTest, StaticOnlyAppsShipMaterialButNeverPin) {
  const auto& eco = SmallEco();
  int checked = 0;
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    const auto& apps = eco.apps(p);
    for (std::size_t i = 0; i < apps.size(); ++i) {
      const AppTruth& t = eco.truth(p, i);
      if (!t.static_only) continue;
      EXPECT_FALSE(t.runtime_pinning);
      EXPECT_FALSE(apps[i].behavior.PinsAtRuntime());
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(GeneratorTest, IosMainBinariesAreEncrypted) {
  const auto& eco = SmallEco();
  int encrypted = 0;
  for (const auto& app : eco.apps(Platform::kIos)) {
    for (const auto& [path, content] : app.package.files()) {
      if (appmodel::IsFairPlayEncrypted(content)) ++encrypted;
    }
  }
  EXPECT_EQ(encrypted, static_cast<int>(eco.apps(Platform::kIos).size()));
}

TEST(GeneratorTest, WorldInfrastructureIsExported) {
  const auto& eco = SmallEco();
  EXPECT_GT(eco.ct_log().size(), 0u);
  EXPECT_GT(eco.organizations().size(), 0u);
  // Apple hosts exist for the iOS background-noise model.
  EXPECT_NE(eco.world().Find("gsp-ssl.icloud.com"), nullptr);
}

TEST(GeneratorTest, PopularContainsCollisionsFromCommon) {
  const auto& eco = SmallEco();
  const Dataset& common = eco.dataset(DatasetId::kCommon, Platform::kIos);
  const Dataset& popular = eco.dataset(DatasetId::kPopular, Platform::kIos);
  const std::set<std::size_t> common_set(common.app_indices.begin(),
                                         common.app_indices.end());
  int collisions = 0;
  for (std::size_t idx : popular.app_indices) {
    if (common_set.contains(idx)) ++collisions;
  }
  EXPECT_GT(collisions, 0);
}

TEST(GeneratorTest, SpecialCasesExist) {
  const auto& eco = SmallEco();
  int self_signed = 0, custom = 0, unavailable = 0;
  std::set<std::string> seen;
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    for (const auto& app : eco.apps(p)) {
      for (const auto& dest : app.behavior.destinations) {
        if (!dest.pinned || !seen.insert(dest.hostname).second) continue;
        const auto* srv = eco.world().Find(dest.hostname);
        if (srv->pki == appmodel::PkiType::kSelfSigned) ++self_signed;
        if (srv->pki == appmodel::PkiType::kCustomPki) ++custom;
        if (srv->chain_fetch_unavailable) ++unavailable;
      }
    }
  }
  EXPECT_GE(self_signed, 1);
  EXPECT_GE(custom, 1);
  EXPECT_GE(unavailable, 1);
}

}  // namespace
}  // namespace pinscope::store

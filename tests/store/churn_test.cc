// Snapshot-churn suite (DESIGN.md §15): AdvanceSnapshot is deterministic
// across regenerations, its counters match independently observed world and
// app changes, key-reusing renewals keep SPKI pins valid (the §5.3.3
// asymmetry), the stale-pin census agrees with a recount, pin rotations
// reach inside FairPlay-encrypted binaries, and changed_apps is exactly the
// updates-plus-renewal-contacts work list incremental re-analysis consumes.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "appmodel/app.h"
#include "appmodel/ios_package.h"
#include "appmodel/server_world.h"
#include "store/generator.h"
#include "tls/pinning.h"

namespace pinscope::store {
namespace {

using appmodel::Platform;

EcosystemConfig MiniConfig(std::uint64_t seed = 7) {
  EcosystemConfig config;
  config.seed = seed;
  config.scale = 24.0 / 5333.0;
  return config;
}

// Churn hot enough that even the mini corpus renews, updates, and rotates.
ChurnConfig HotChurn() {
  ChurnConfig config;
  config.host_renewal_rate = 0.5;
  config.key_reuse_prob = 0.5;
  config.app_update_rate = 0.5;
  config.pin_rotation_prob = 1.0;
  return config;
}

std::string FpString(const x509::Certificate& cert) {
  const auto fp = cert.FingerprintSha256();
  return std::string(fp.begin(), fp.end());
}

// host → leaf fingerprint, the world-side change detector.
std::map<std::string, std::string> LeafFingerprints(const Ecosystem& eco) {
  std::map<std::string, std::string> fps;
  for (const std::string& host : eco.world().Hostnames()) {
    fps[host] = FpString(eco.world().Find(host)->endpoint.chain.front());
  }
  return fps;
}

// Every file's contents as text, FairPlay-decrypted where encrypted — what a
// developer rebuild (and the churn rewriter) actually sees.
std::string DecryptedCorpusText(const appmodel::App& app) {
  std::string text;
  for (const auto& [path, contents] : app.package.files()) {
    const util::Bytes plain =
        appmodel::IsFairPlayEncrypted(contents)
            ? appmodel::FairPlayDecrypt(contents, app.meta.app_id)
            : contents;
    text.append(reinterpret_cast<const char*>(plain.data()), plain.size());
    text.push_back('\n');
  }
  return text;
}

void ExpectSameChurn(const SnapshotChurn& a, const SnapshotChurn& b) {
  EXPECT_EQ(a.snapshot, b.snapshot);
  EXPECT_EQ(a.hosts_renewed, b.hosts_renewed);
  EXPECT_EQ(a.keys_reused, b.keys_reused);
  EXPECT_EQ(a.apps_updated, b.apps_updated);
  EXPECT_EQ(a.pins_rotated, b.pins_rotated);
  EXPECT_EQ(a.stale_pins, b.stale_pins);
  EXPECT_EQ(a.changed_apps, b.changed_apps);
}

TEST(ChurnTest, AdvancesAreDeterministicAcrossRegenerations) {
  Ecosystem first = Ecosystem::Generate(MiniConfig());
  Ecosystem second = Ecosystem::Generate(MiniConfig());

  for (int epoch = 1; epoch <= 2; ++epoch) {
    SCOPED_TRACE("epoch=" + std::to_string(epoch));
    const SnapshotChurn a = first.AdvanceSnapshot(HotChurn());
    const SnapshotChurn b = second.AdvanceSnapshot(HotChurn());
    ExpectSameChurn(a, b);
    EXPECT_EQ(a.snapshot, epoch);
  }

  // Same decisions must mean same bytes: world chains and every package.
  EXPECT_EQ(LeafFingerprints(first), LeafFingerprints(second));
  for (const Platform p : {Platform::kAndroid, Platform::kIos}) {
    const auto& apps_a = first.apps(p);
    const auto& apps_b = second.apps(p);
    ASSERT_EQ(apps_a.size(), apps_b.size());
    for (std::size_t i = 0; i < apps_a.size(); ++i) {
      EXPECT_EQ(apps_a[i].package.files(), apps_b[i].package.files()) << i;
    }
  }
}

TEST(ChurnTest, RenewalCountMatchesObservedChainChangesAndSkipsSelfSigned) {
  Ecosystem eco = Ecosystem::Generate(MiniConfig());
  const auto before = LeafFingerprints(eco);
  const SnapshotChurn churn = eco.AdvanceSnapshot(HotChurn());
  const auto after = LeafFingerprints(eco);

  std::size_t observed = 0;
  for (const auto& [host, fp] : before) {
    if (after.at(host) != fp) {
      ++observed;
      EXPECT_NE(eco.world().Find(host)->pki, appmodel::PkiType::kSelfSigned)
          << host << " is self-signed and must never renew";
    }
  }
  EXPECT_EQ(observed, churn.hosts_renewed);
  EXPECT_GT(churn.hosts_renewed, 0u) << "vacuous churn — raise the rates";
  EXPECT_LE(churn.keys_reused, churn.hosts_renewed);
}

TEST(ChurnTest, KeyReusingRenewalsKeepSpkiPinsValid) {
  Ecosystem eco = Ecosystem::Generate(MiniConfig());
  // The old leaf's SPKI pin, per host — §5.3.3's survivability probe.
  std::map<std::string, tls::Pin> old_pins;
  const auto before = LeafFingerprints(eco);
  for (const std::string& host : eco.world().Hostnames()) {
    old_pins.emplace(host, tls::Pin::ForCertificate(
                               eco.world().Find(host)->endpoint.chain.front(),
                               tls::PinForm::kSpkiSha256));
  }

  const SnapshotChurn churn = eco.AdvanceSnapshot(HotChurn());

  std::size_t surviving = 0;
  for (const std::string& host : eco.world().Hostnames()) {
    const x509::Certificate& fresh_leaf =
        eco.world().Find(host)->endpoint.chain.front();
    if (FpString(fresh_leaf) == before.at(host)) continue;  // not renewed
    if (old_pins.at(host).Matches(fresh_leaf)) ++surviving;
  }
  EXPECT_EQ(surviving, churn.keys_reused);
}

TEST(ChurnTest, StalePinCensusMatchesIndependentRecount) {
  Ecosystem eco = Ecosystem::Generate(MiniConfig());
  // Fresh keys everywhere and no app updates: renewals break pins and no
  // rotation repairs them, so staleness must show up and accumulate.
  ChurnConfig config;
  config.host_renewal_rate = 0.5;
  config.key_reuse_prob = 0.0;
  config.app_update_rate = 0.0;
  const SnapshotChurn churn = eco.AdvanceSnapshot(config);

  std::size_t recount = 0;
  for (const Platform p : {Platform::kAndroid, Platform::kIos}) {
    for (const appmodel::App& app : eco.apps(p)) {
      for (const auto& db : app.behavior.destinations) {
        if (!db.pinned) continue;
        const appmodel::ServerInfo* srv = eco.world().Find(db.hostname);
        if (srv == nullptr) continue;
        for (const tls::Pin& pin : db.pins) {
          bool live = false;
          for (const x509::Certificate& cert : srv->endpoint.chain) {
            if (pin.Matches(cert)) {
              live = true;
              break;
            }
          }
          if (!live) ++recount;
        }
      }
    }
  }
  EXPECT_EQ(recount, churn.stale_pins);
  EXPECT_GT(churn.stale_pins, 0u) << "vacuous: no pin went stale";
}

TEST(ChurnTest, PinRotationRewritesReachInsideFairPlayBinaries) {
  Ecosystem eco = Ecosystem::Generate(MiniConfig());
  // Force the full path: every host renews with a fresh key (all pins go
  // stale), every app updates, every update rotates.
  ChurnConfig config;
  config.host_renewal_rate = 1.0;
  config.key_reuse_prob = 0.0;
  config.app_update_rate = 1.0;
  config.pin_rotation_prob = 1.0;

  // Embedded behavior pins per iOS app, located by (destination, pin slot)
  // so we can tell after churn which ones actually rotated. Pins whose host
  // never renewed (e.g. self-signed) legitimately stay put.
  struct Target {
    std::size_t index;
    std::size_t dest;
    std::size_t slot;
    std::string old_pin;
  };
  std::vector<Target> targets;
  const auto& ios_apps = eco.apps(Platform::kIos);
  for (std::size_t i = 0; i < ios_apps.size(); ++i) {
    const std::string text = DecryptedCorpusText(ios_apps[i]);
    const auto& dests = ios_apps[i].behavior.destinations;
    for (std::size_t d = 0; d < dests.size(); ++d) {
      if (!dests[d].pinned) continue;
      for (std::size_t s = 0; s < dests[d].pins.size(); ++s) {
        const std::string pin = dests[d].pins[s].ToPinString();
        if (text.find(pin) != std::string::npos) {
          targets.push_back({i, d, s, pin});
        }
      }
    }
  }
  ASSERT_FALSE(targets.empty()) << "no iOS app embeds a pin string";

  const SnapshotChurn churn = eco.AdvanceSnapshot(config);
  EXPECT_GT(churn.pins_rotated, 0u);

  std::size_t rotated_targets = 0;
  std::size_t rewritten_inside_fairplay = 0;
  for (const Target& t : targets) {
    const appmodel::App& app = ios_apps[t.index];
    const std::string new_pin = app.behavior.destinations[t.dest]
                                    .pins[t.slot]
                                    .ToPinString();
    if (new_pin == t.old_pin) continue;  // this pin did not rotate
    ++rotated_targets;
    const std::string after = DecryptedCorpusText(app);
    // Every embedded occurrence of the old pin was rewritten to the new one.
    EXPECT_EQ(after.find(t.old_pin), std::string::npos)
        << app.meta.app_id << " still embeds a rotated-away pin";
    EXPECT_NE(after.find(new_pin), std::string::npos) << app.meta.app_id;
    // The rewrite is only visible through decryption when it landed in a
    // FairPlay file: the ciphertext itself must not leak the string.
    for (const auto& [path, contents] : app.package.files()) {
      if (!appmodel::IsFairPlayEncrypted(contents)) continue;
      const util::Bytes plain =
          appmodel::FairPlayDecrypt(contents, app.meta.app_id);
      const std::string plain_text(
          reinterpret_cast<const char*>(plain.data()), plain.size());
      if (plain_text.find(new_pin) == std::string::npos) continue;
      ++rewritten_inside_fairplay;
      const std::string cipher_text(
          reinterpret_cast<const char*>(contents.data()), contents.size());
      EXPECT_EQ(cipher_text.find(new_pin), std::string::npos)
          << path << " leaks the plaintext pin";
    }
  }
  EXPECT_GT(rotated_targets, 0u) << "no embedded pin rotated";
  EXPECT_GT(rewritten_inside_fairplay, 0u)
      << "no rotation landed inside a FairPlay-encrypted file";
}

TEST(ChurnTest, ChangedAppsAreExactlyUpdatesPlusRenewalContacts) {
  Ecosystem eco = Ecosystem::Generate(MiniConfig());
  const auto before = LeafFingerprints(eco);
  const SnapshotChurn churn = eco.AdvanceSnapshot(HotChurn());
  const auto after = LeafFingerprints(eco);

  std::set<std::string> renewed;
  for (const auto& [host, fp] : before) {
    if (after.at(host) != fp) renewed.insert(host);
  }

  std::set<std::pair<Platform, std::size_t>> expected;
  for (const Platform p : {Platform::kAndroid, Platform::kIos}) {
    const auto& apps = eco.apps(p);
    for (std::size_t i = 0; i < apps.size(); ++i) {
      const util::Bytes* stamp =
          apps[i].package.Find("META-INF/churn_revision.txt");
      bool changed = stamp != nullptr;
      for (const auto& db : apps[i].behavior.destinations) {
        if (renewed.contains(db.hostname)) changed = true;
      }
      if (changed) expected.insert({p, i});
    }
  }

  const std::set<std::pair<Platform, std::size_t>> actual(
      churn.changed_apps.begin(), churn.changed_apps.end());
  EXPECT_EQ(actual.size(), churn.changed_apps.size()) << "duplicate entries";
  EXPECT_EQ(actual, expected);
  EXPECT_FALSE(actual.empty()) << "vacuous churn — raise the rates";
}

}  // namespace
}  // namespace pinscope::store

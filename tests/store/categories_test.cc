#include "store/categories.h"

#include <gtest/gtest.h>

#include <map>

namespace pinscope::store {
namespace {

using appmodel::Platform;

TEST(CategoriesTest, PlatformListsAreNonTrivial) {
  EXPECT_GT(Categories(Platform::kAndroid).size(), 30u);
  EXPECT_GT(Categories(Platform::kIos).size(), 20u);
}

TEST(CategoriesTest, SamplesComeFromTheCatalog) {
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::string cat = SampleCategory(Platform::kAndroid, DatasetId::kPopular, rng);
    const auto& all = Categories(Platform::kAndroid);
    EXPECT_NE(std::find(all.begin(), all.end(), cat), all.end()) << cat;
  }
}

TEST(CategoriesTest, PopularAndroidIsGamesHeavy) {
  // Table 1: 36% of popular Android apps are Games.
  util::Rng rng(2);
  int games = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (SampleCategory(Platform::kAndroid, DatasetId::kPopular, rng) == "Games") {
      ++games;
    }
  }
  EXPECT_NEAR(static_cast<double>(games) / n, 0.36, 0.03);
}

TEST(CategoriesTest, RandomAndroidLeadsWithEducation) {
  util::Rng rng(3);
  int education = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (SampleCategory(Platform::kAndroid, DatasetId::kRandom, rng) == "Education") {
      ++education;
    }
  }
  EXPECT_NEAR(static_cast<double>(education) / n, 0.12, 0.02);
}

TEST(CategoriesTest, PinningSamplesAreFinanceHeavy) {
  // Tables 4/5: Finance dominates pinning apps on both platforms.
  for (Platform p : {Platform::kAndroid, Platform::kIos}) {
    util::Rng rng(4);
    std::map<std::string, int> counts;
    const int n = 4000;
    for (int i = 0; i < n; ++i) ++counts[SamplePinningCategory(p, rng)];
    std::string top;
    int best = 0;
    for (const auto& [cat, c] : counts) {
      if (c > best) {
        best = c;
        top = cat;
      }
    }
    EXPECT_EQ(top, "Finance") << PlatformName(p);
  }
}

TEST(CategoriesTest, IosMappingCoversAndroidCatalog) {
  for (const std::string& cat : Categories(appmodel::Platform::kAndroid)) {
    const std::string mapped = ToIosCategory(cat);
    const auto& ios = Categories(appmodel::Platform::kIos);
    EXPECT_NE(std::find(ios.begin(), ios.end(), mapped), ios.end())
        << cat << " → " << mapped;
  }
}

TEST(CategoriesTest, SharedNamesPassThrough) {
  EXPECT_EQ(ToIosCategory("Games"), "Games");
  EXPECT_EQ(ToIosCategory("Finance"), "Finance");
  EXPECT_EQ(ToIosCategory("Social"), "Social Networking");
  EXPECT_EQ(ToIosCategory("Photography"), "Photo & Video");
}

}  // namespace
}  // namespace pinscope::store

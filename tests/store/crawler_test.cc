#include "store/crawler.h"

#include <gtest/gtest.h>

namespace pinscope::store {
namespace {

const Ecosystem& CrawlEco() {
  static const Ecosystem eco = [] {
    EcosystemConfig config;
    config.seed = 11;
    config.scale = 0.05;
    return Ecosystem::Generate(config);
  }();
  return eco;
}

TEST(GPlayCliTest, DownloadsKnownApps) {
  GPlayCli cli(CrawlEco());
  const auto& first = CrawlEco().apps(appmodel::Platform::kAndroid).front();
  const auto app = cli.Download(first.meta.app_id);
  ASSERT_TRUE(app.has_value());
  EXPECT_EQ((*app)->meta.app_id, first.meta.app_id);
  EXPECT_EQ(cli.stats().requests, 1);
  EXPECT_GT(cli.stats().elapsed_ms, 0);
}

TEST(GPlayCliTest, UnknownIdFails) {
  GPlayCli cli(CrawlEco());
  EXPECT_FALSE(cli.Download("com.does.not.exist").has_value());
}

TEST(ITunesCrawlerTest, AttendedModeHandlesInterventions) {
  ITunesGuiCrawler crawler(CrawlEco(), /*attended=*/true);
  const auto& apps = CrawlEco().apps(appmodel::Platform::kIos);
  int ok = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(apps.size(), 45); ++i) {
    if (crawler.Download(apps[i].meta.app_id).has_value()) ++ok;
  }
  EXPECT_EQ(ok, static_cast<int>(std::min<std::size_t>(apps.size(), 45)));
  EXPECT_GE(crawler.stats().manual_interventions, 1);
}

TEST(ITunesCrawlerTest, UnattendedModeLosesWedgedDownloads) {
  ITunesGuiCrawler crawler(CrawlEco(), /*attended=*/false);
  const auto& apps = CrawlEco().apps(appmodel::Platform::kIos);
  ASSERT_GE(apps.size(), 40u);
  int failures = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    if (!crawler.Download(apps[i % apps.size()].meta.app_id).has_value()) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 1);  // the 40th request wedges
}

TEST(ScraperTest, TopFreeOrdersByRank) {
  GooglePlayScraper scraper(CrawlEco());
  const auto games = scraper.TopFree("Games");
  for (std::size_t i = 1; i < games.size(); ++i) {
    EXPECT_LE(games[i - 1]->meta.popularity_rank, games[i]->meta.popularity_rank);
  }
}

TEST(ITunesSearchTest, CapsAtHundredResults) {
  ITunesSearchApi api(CrawlEco());
  EXPECT_LE(api.TopApps("Games").size(), 100u);
}

TEST(AlternativeToTest, ListingsLinkBothStores) {
  AlternativeToCrawler crawler(CrawlEco());
  const auto listings = crawler.PopularListings(3);
  ASSERT_FALSE(listings.empty());
  EXPECT_LE(listings.size(), 30u);
  GPlayCli android_cli(CrawlEco());
  ITunesGuiCrawler ios_cli(CrawlEco(), true);
  EXPECT_TRUE(android_cli.Download(listings[0].android_app_id).has_value());
  EXPECT_TRUE(ios_cli.Download(listings[0].ios_app_id).has_value());
}

TEST(AlternativeToTest, RespectsRateLimit) {
  AlternativeToCrawler crawler(CrawlEco());
  (void)crawler.PopularListings(5);
  // §7: one page per second.
  EXPECT_GE(crawler.stats().elapsed_ms, 5'000);
  EXPECT_FALSE(crawler.stats().user_agent.empty());
}

}  // namespace
}  // namespace pinscope::store

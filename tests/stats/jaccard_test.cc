#include "stats/jaccard.h"

#include <gtest/gtest.h>

namespace pinscope::stats {
namespace {

TEST(JaccardTest, BasicValues) {
  EXPECT_DOUBLE_EQ(JaccardIndex(std::set<std::string>{"a", "b"},
                                std::set<std::string>{"a", "b"}),
                   1.0);
  EXPECT_DOUBLE_EQ(JaccardIndex(std::set<std::string>{"a"},
                                std::set<std::string>{"b"}),
                   0.0);
  EXPECT_DOUBLE_EQ(JaccardIndex(std::set<std::string>{"a", "b"},
                                std::set<std::string>{"b", "c"}),
                   1.0 / 3.0);
}

TEST(JaccardTest, EmptySetsConventions) {
  EXPECT_DOUBLE_EQ(JaccardIndex(std::set<std::string>{}, std::set<std::string>{}),
                   1.0);
  EXPECT_DOUBLE_EQ(JaccardIndex(std::set<std::string>{"a"}, std::set<std::string>{}),
                   0.0);
}

TEST(JaccardTest, VectorOverloadDeduplicates) {
  EXPECT_DOUBLE_EQ(JaccardIndex(std::vector<std::string>{"a", "a", "b"},
                                std::vector<std::string>{"a", "b", "b"}),
                   1.0);
}

TEST(JaccardTest, PaperFigure3Values) {
  // Twitter row: overlap 0.5 — two pinned domains on one side, one shared.
  EXPECT_DOUBLE_EQ(JaccardIndex(std::set<std::string>{"x.com", "y.com"},
                                std::set<std::string>{"x.com"}),
                   0.5);
  // J.P. row: 0.25.
  EXPECT_DOUBLE_EQ(
      JaccardIndex(std::set<std::string>{"a", "b", "c", "d"},
                   std::set<std::string>{"a"}),
      0.25);
}

TEST(OverlapFractionTest, Basics) {
  EXPECT_DOUBLE_EQ(OverlapFraction(std::set<std::string>{"a", "b"},
                                   std::set<std::string>{"b", "c"}),
                   0.5);
  EXPECT_DOUBLE_EQ(OverlapFraction(std::set<std::string>{}, {"a"}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapFraction(std::set<std::string>{"a"},
                                   std::set<std::string>{"a"}),
                   1.0);
}

TEST(IntersectTest, Basics) {
  const auto inter = Intersect({"a", "b", "c"}, {"b", "c", "d"});
  EXPECT_EQ(inter, (std::set<std::string>{"b", "c"}));
  EXPECT_TRUE(Intersect({"a"}, {"b"}).empty());
}

}  // namespace
}  // namespace pinscope::stats

#include "stats/chi_square.h"

#include <gtest/gtest.h>

namespace pinscope::stats {
namespace {

TEST(ChiSquareTest, IndependentDataIsNotSignificant) {
  // Identical proportions → statistic 0, p-value 1.
  const auto result = ChiSquareTest({50, 50, 50, 50});
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  EXPECT_FALSE(result.Significant());
}

TEST(ChiSquareTest, StrongAssociationIsSignificant) {
  const auto result = ChiSquareTest({90, 10, 10, 90});
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.statistic, 100.0);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_TRUE(result.Significant());
}

TEST(ChiSquareTest, KnownValueAgainstScipy) {
  // scipy.stats.chi2_contingency([[20,30],[40,10]], correction=False)
  // → statistic 16.6667, p ≈ 4.46e-5.
  const auto result = ChiSquareTest({20, 30, 40, 10});
  ASSERT_TRUE(result.valid);
  EXPECT_NEAR(result.statistic, 16.6667, 1e-3);
  EXPECT_NEAR(result.p_value, 4.456e-5, 1e-7);
}

TEST(ChiSquareTest, PaperScenarioAdIdSignificance) {
  // The Table 9 situation: ~26% vs ~18% Ad-ID prevalence. With iOS-scale
  // destination counts the gap is significant; with the smaller Android
  // pinned-destination count it is not.
  const auto ios = ChiSquareTest({65, 188, 722, 3278});     // n=253 vs 4000
  EXPECT_TRUE(ios.Significant());
  const auto android = ChiSquareTest({26, 75, 600, 2400});  // n=101 vs 3000
  EXPECT_FALSE(android.Significant());
}

TEST(ChiSquareTest, DegenerateMarginsAreInvalid) {
  EXPECT_FALSE(ChiSquareTest({0, 0, 10, 20}).valid);   // empty row
  EXPECT_FALSE(ChiSquareTest({0, 10, 0, 20}).valid);   // empty column
  EXPECT_FALSE(ChiSquareTest({0, 0, 0, 0}).valid);
  EXPECT_FALSE(ChiSquareTest({0, 0, 0, 0}).Significant());
}

TEST(ChiSquareSurvivalTest, KnownQuantiles) {
  EXPECT_NEAR(ChiSquareSurvivalDf1(3.841), 0.05, 1e-3);   // 95th percentile
  EXPECT_NEAR(ChiSquareSurvivalDf1(6.635), 0.01, 1e-3);   // 99th percentile
  EXPECT_DOUBLE_EQ(ChiSquareSurvivalDf1(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ChiSquareSurvivalDf1(-5.0), 1.0);
}

TEST(ChiSquareTest, SymmetryInGroups) {
  const auto a = ChiSquareTest({30, 70, 50, 50});
  const auto b = ChiSquareTest({50, 50, 30, 70});
  EXPECT_NEAR(a.statistic, b.statistic, 1e-12);
}

}  // namespace
}  // namespace pinscope::stats

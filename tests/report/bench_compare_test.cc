// Bench-comparator suite: direction classification, the regression /
// improvement split, boolean claims, array skipping, and parse-error
// handling — the guarantees tools/bench_diff and PINSCOPE_BENCH_CHECK
// lean on.
#include "report/bench_compare.h"

#include <gtest/gtest.h>

#include <string>

namespace pinscope::report {
namespace {

TEST(BenchCompareTest, DirectionFollowsTheLastDottedSegment) {
  EXPECT_EQ(DirectionForPath("streaming.large_ms"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForPath("scan.p99_us"), MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForPath("timeline.reservoir_bytes"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForPath("trace.dropped"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForPath("autopsy.overhead_pct"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForPath("pipeline.speedup"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForPath("scan_cache.warm_hits"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForPath("autopsy.within_2pct"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForPath("exports.identical"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForPath("run.workers"),
            MetricDirection::kInformational);
  EXPECT_EQ(DirectionForPath("corpus.apps"),
            MetricDirection::kInformational);
}

TEST(BenchCompareTest, IdenticalDocumentsPassWithMetricsCompared) {
  const std::string doc =
      "{\"scan\": {\"total_ms\": 120.5, \"speedup\": 3.1}, \"apps\": 500}";
  const BenchCompareResult result = CompareBenchJson(doc, doc);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.regressions.empty());
  EXPECT_TRUE(result.improvements.empty());
  EXPECT_GE(result.compared, 2u);
}

TEST(BenchCompareTest, TwentyPercentWallTimeRegressionFailsTheGate) {
  const std::string baseline = "{\"scan\": {\"total_ms\": 100.0}}";
  const std::string current = "{\"scan\": {\"total_ms\": 120.0}}";
  const BenchCompareResult result = CompareBenchJson(baseline, current);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].path, "scan.total_ms");
  EXPECT_NEAR(result.regressions[0].delta_pct, 20.0, 1e-9);
}

TEST(BenchCompareTest, SpeedupDropFailsTheGate) {
  const std::string baseline = "{\"pipeline\": {\"speedup\": 4.0}}";
  const std::string current = "{\"pipeline\": {\"speedup\": 3.0}}";
  const BenchCompareResult result = CompareBenchJson(baseline, current);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].path, "pipeline.speedup");
}

TEST(BenchCompareTest, WallTimeImprovementIsNotARegression) {
  const std::string baseline = "{\"scan\": {\"total_ms\": 100.0}}";
  const std::string current = "{\"scan\": {\"total_ms\": 70.0}}";
  const BenchCompareResult result = CompareBenchJson(baseline, current);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.improvements.size(), 1u);
  EXPECT_EQ(result.improvements[0].path, "scan.total_ms");
}

TEST(BenchCompareTest, BooleanClaimTurningFalseIsARegression) {
  const std::string baseline = "{\"exports\": {\"identical\": true}}";
  const std::string current = "{\"exports\": {\"identical\": false}}";
  const BenchCompareResult result = CompareBenchJson(baseline, current);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].path, "exports.identical");
}

TEST(BenchCompareTest, SmallDriftUnderTheThresholdIsIgnored) {
  const std::string baseline = "{\"scan\": {\"total_ms\": 100.0}}";
  const std::string current = "{\"scan\": {\"total_ms\": 104.0}}";
  const BenchCompareResult result = CompareBenchJson(baseline, current);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.improvements.empty());
}

TEST(BenchCompareTest, ThresholdIsConfigurable) {
  const std::string baseline = "{\"scan\": {\"total_ms\": 100.0}}";
  const std::string current = "{\"scan\": {\"total_ms\": 104.0}}";
  BenchCompareOptions options;
  options.max_regress_pct = 2.0;
  const BenchCompareResult result =
      CompareBenchJson(baseline, current, options);
  EXPECT_FALSE(result.ok());
}

TEST(BenchCompareTest, InformationalPathsNeverGate) {
  const std::string baseline = "{\"run\": {\"workers\": 4, \"apps\": 100}}";
  const std::string current = "{\"run\": {\"workers\": 8, \"apps\": 900}}";
  const BenchCompareResult result = CompareBenchJson(baseline, current);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.regressions.empty());
  EXPECT_TRUE(result.improvements.empty());
}

TEST(BenchCompareTest, ArraysAreSkippedWholesale) {
  const std::string doc =
      "{\"timeline\": [1, 2, 3], \"scan\": {\"total_ms\": 10.0}}";
  const auto flat = FlattenBenchJson(doc);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0].first, "scan.total_ms");

  const std::string longer =
      "{\"timeline\": [1, 2, 3, 4, 5], \"scan\": {\"total_ms\": 10.0}}";
  EXPECT_TRUE(CompareBenchJson(doc, longer).ok());
}

TEST(BenchCompareTest, BooleansFlattenAsZeroOrOne) {
  const auto flat = FlattenBenchJson("{\"a\": true, \"b\": false}");
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_DOUBLE_EQ(flat[0].second, 1.0);
  EXPECT_DOUBLE_EQ(flat[1].second, 0.0);
}

TEST(BenchCompareTest, ParseErrorFailsTheGate) {
  const BenchCompareResult result =
      CompareBenchJson("{\"a\": 1}", "{\"a\": 1");
  EXPECT_FALSE(result.errors.empty());
  EXPECT_FALSE(result.ok());
}

TEST(BenchCompareTest, RenderNamesTheRegression) {
  const BenchCompareResult result = CompareBenchJson(
      "{\"scan\": {\"total_ms\": 100.0}}", "{\"scan\": {\"total_ms\": 150.0}}");
  const std::string rendered = RenderBenchCompare(result);
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);
  EXPECT_NE(rendered.find("scan.total_ms"), std::string::npos);
}

}  // namespace
}  // namespace pinscope::report

#include "report/csv_writer.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace pinscope::report {
namespace {

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvEscape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvEscape("has\nnewline"), "\"has\nnewline\"");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvWriterTest, BuildsDocument) {
  CsvWriter w;
  w.SetHeader({"app", "pinned"});
  w.AddRow({"com.a", "true"});
  w.AddRow({"com,b", "false"});
  EXPECT_EQ(w.rows(), 2u);
  EXPECT_EQ(w.TakeString(),
            "app,pinned\r\ncom.a,true\r\n\"com,b\",false\r\n");
}

TEST(CsvWriterTest, EnforcesColumnCount) {
  CsvWriter w;
  w.SetHeader({"a", "b"});
  EXPECT_THROW(w.AddRow({"only-one"}), util::Error);
  EXPECT_THROW(w.AddRow({"1", "2", "3"}), util::Error);
}

TEST(CsvWriterTest, RequiresHeaderFirst) {
  CsvWriter w;
  EXPECT_THROW(w.AddRow({"x"}), util::Error);
  CsvWriter w2;
  w2.SetHeader({"a"});
  EXPECT_THROW(w2.SetHeader({"b"}), util::Error);
  EXPECT_THROW(CsvWriter{}.SetHeader({}), util::Error);
}

}  // namespace
}  // namespace pinscope::report

#include "report/table.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace pinscope::report {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table;
  table.SetHeader({"Name", "Count"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"bee", "22"});
  const std::string out = table.Render();
  const auto lines = util::Split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0], "Name   Count");
  EXPECT_EQ(lines[1], std::string(12, '-'));
  EXPECT_EQ(lines[2], "alpha  1");
  EXPECT_EQ(lines[3], "bee    22");
}

TEST(TextTableTest, PadsShortRows) {
  TextTable table;
  table.SetHeader({"A", "B", "C"});
  table.AddRow({"only-a"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("only-a"), std::string::npos);
}

TEST(TextTableTest, WideCellsStretchColumns) {
  TextTable table;
  table.SetHeader({"X"});
  table.AddRow({"very-long-cell-content"});
  const auto lines = util::Split(table.Render(), '\n');
  EXPECT_EQ(lines[1].size(), std::string("very-long-cell-content").size());
}

TEST(TextTableTest, EmptyTableRendersHeaderOnly) {
  TextTable table;
  table.SetHeader({"H1", "H2"});
  const auto lines = util::Split(table.Render(), '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0], "H1  H2");
}

TEST(HeatCellTest, FractionMapsToFill) {
  EXPECT_EQ(HeatCell(0.0, 10), "[          ] 0%");
  EXPECT_EQ(HeatCell(1.0, 10), "[##########] 100%");
  EXPECT_EQ(HeatCell(0.5, 10), "[#####     ] 50%");
}

TEST(HeatCellTest, ClampsOutOfRange) {
  EXPECT_EQ(HeatCell(-0.5, 10), HeatCell(0.0, 10));
  EXPECT_EQ(HeatCell(1.5, 10), HeatCell(1.0, 10));
}

TEST(SectionHeaderTest, WrapsTitle) {
  EXPECT_EQ(SectionHeader("Table 1"), "\n=== Table 1 ===\n");
}

}  // namespace
}  // namespace pinscope::report

// Run-report generator unit suite: attribution derivation from journal
// events, Markdown/JSON rendering, and the companion-path rule.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "report/run_report.h"

namespace pinscope::report {
namespace {

obs::LogEvent Event(std::string platform, std::string app, std::string name,
                    std::vector<obs::LogField> fields = {}) {
  obs::LogEvent e;
  e.platform = std::move(platform);
  e.app_id = std::move(app);
  e.name = std::move(name);
  e.fields = std::move(fields);
  return e;
}

TEST(AttributionTest, DerivesReasonsFromMatchingEventsOnly) {
  AppVerdict v;
  v.platform = "android";
  v.app_id = "com.app.a";

  std::vector<obs::LogEvent> events;
  events.push_back(Event("android", "com.app.a", "static.pin_found"));
  events.push_back(Event("android", "com.app.a", "static.pin_found"));
  events.push_back(Event("android", "com.app.a", "static.cert_found"));
  events.push_back(Event("android", "com.app.a", "nsc.pin_set",
                         {{"domain", obs::LogValue("api.a.com")},
                          {"source", obs::LogValue("res/xml/nsc.xml")}}));
  events.push_back(Event("android", "com.app.a", "dynamic.divergence",
                         {{"host", obs::LogValue("api.a.com")},
                          {"pinned", obs::LogValue(true)},
                          {"rationale", obs::LogValue("every intercepted "
                                                      "connection failed")}}));
  // Noise that must not attribute: other app, unpinned divergence.
  events.push_back(Event("android", "com.app.b", "static.pin_found"));
  events.push_back(Event("android", "com.app.a", "dynamic.divergence",
                         {{"host", obs::LogValue("cdn.b.net")},
                          {"pinned", obs::LogValue(false)},
                          {"rationale", obs::LogValue("not used")}}));

  const std::vector<std::string> reasons = AttributionFor(v, events);
  ASSERT_EQ(reasons.size(), 4u);
  // Aggregated scanner lines come first.
  EXPECT_EQ(reasons[0], "1 embedded certificate");
  EXPECT_EQ(reasons[1], "2 embedded pin strings");
  EXPECT_EQ(reasons[2], "NSC pin-set for api.a.com (res/xml/nsc.xml)");
  EXPECT_EQ(reasons[3],
            "dynamic divergence at api.a.com: every intercepted connection "
            "failed");
}

TEST(AttributionTest, CircumventionAndAtsAttribute) {
  AppVerdict v;
  v.platform = "ios";
  v.app_id = "com.app.ios";
  std::vector<obs::LogEvent> events;
  events.push_back(Event("ios", "com.app.ios", "ats.pinned_domain",
                         {{"domain", obs::LogValue("api.ios.com")},
                          {"source", obs::LogValue("Info.plist")}}));
  events.push_back(Event("ios", "com.app.ios", "frida.circumvented",
                         {{"host", obs::LogValue("api.ios.com")}}));
  const std::vector<std::string> reasons = AttributionFor(v, events);
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[0], "ATS pinned domain api.ios.com (Info.plist)");
  EXPECT_EQ(reasons[1], "circumvented via instrumentation at api.ios.com");
}

TEST(RunReportTest, MarkdownCarriesVerdictTableCachesPhasesAndJournal) {
  RunReportInput input;
  AppVerdict pins;
  pins.platform = "android";
  pins.app_id = "com.app.pins";
  pins.pins_at_runtime = true;
  pins.config_pinning = true;
  pins.pinned_hosts = {"api.pins.com"};
  AppVerdict none;
  none.platform = "ios";
  none.app_id = "com.app.none";
  input.verdicts = {pins, none};

  std::vector<obs::LogEvent> events;
  events.push_back(Event("android", "com.app.pins", "nsc.pin_set",
                         {{"domain", obs::LogValue("api.pins.com")},
                          {"source", obs::LogValue("nsc.xml")}}));
  input.events = &events;

  obs::MetricsRegistry registry;
  registry.gauge("cache.scan.lookups").Set(10);
  registry.gauge("cache.scan.hits").Set(4);
  registry.gauge("cache.scan.entries").Set(6);
  registry.histogram("phase.static", {1e9}).Record(2'000.0);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  input.metrics = &snapshot;

  const std::string md = WriteRunReportMarkdown(input);
  EXPECT_NE(md.find("# pinscope run report"), std::string::npos);
  EXPECT_NE(md.find("- apps analyzed: 2 (android 1, ios 1)"),
            std::string::npos);
  EXPECT_NE(md.find("| app | platform | verdict | attributing evidence |"),
            std::string::npos);
  EXPECT_NE(md.find("| com.app.pins | android | PINS +config | "
                    "NSC pin-set for api.pins.com (nsc.xml) |"),
            std::string::npos);
  // The no-verdict app renders with a "-" evidence cell, not an empty one.
  EXPECT_NE(md.find("| com.app.none | ios | no pinning | - |"),
            std::string::npos);
  EXPECT_NE(md.find("## Caches"), std::string::npos);
  EXPECT_NE(md.find("| scan | 10 | 4 | 6 |"), std::string::npos);
  EXPECT_NE(md.find("## Phases (wall time)"), std::string::npos);
  EXPECT_NE(md.find("| static | 1 | 2.00 | 2.00 |"), std::string::npos);
  EXPECT_NE(md.find("## Journal"), std::string::npos);
  EXPECT_NE(md.find("- events recorded: 1"), std::string::npos);
  EXPECT_NE(md.find("  - nsc.pin_set: 1"), std::string::npos);
}

TEST(RunReportTest, MarkdownOmitsAbsentSections) {
  RunReportInput input;
  AppVerdict v;
  v.platform = "android";
  v.app_id = "com.app.solo";
  input.verdicts = {v};
  const std::string md = WriteRunReportMarkdown(input);
  EXPECT_NE(md.find("## Verdict attribution"), std::string::npos);
  EXPECT_EQ(md.find("## Caches"), std::string::npos);
  EXPECT_EQ(md.find("## Phases"), std::string::npos);
  EXPECT_EQ(md.find("## Journal"), std::string::npos);
}

TEST(RunReportTest, JsonCarriesVerdictsAttributionAndJournalRollup) {
  RunReportInput input;
  AppVerdict v;
  v.platform = "android";
  v.app_id = "com.app.pins";
  v.pins_at_runtime = true;
  v.pinned_hosts = {"api.pins.com"};
  input.verdicts = {v};

  std::vector<obs::LogEvent> events;
  events.push_back(Event("android", "com.app.pins", "dynamic.divergence",
                         {{"host", obs::LogValue("api.pins.com")},
                          {"pinned", obs::LogValue(true)},
                          {"rationale", obs::LogValue("all failed")}}));
  events.push_back(Event("android", "com.app.pins", "mitm.intercept"));
  input.events = &events;

  const std::string json = WriteRunReportJson(input);
  EXPECT_NE(json.find("\"app_id\":\"com.app.pins\""), std::string::npos);
  EXPECT_NE(json.find("\"pins_at_runtime\":true"), std::string::npos);
  EXPECT_NE(json.find("\"pinned_hosts\":[\"api.pins.com\"]"),
            std::string::npos);
  EXPECT_NE(json.find("dynamic divergence at api.pins.com: all failed"),
            std::string::npos);
  EXPECT_NE(json.find("\"journal\""), std::string::npos);
  EXPECT_NE(json.find("\"events\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dynamic.divergence\":1"), std::string::npos);
  EXPECT_NE(json.find("\"mitm.intercept\":1"), std::string::npos);
}

TEST(RunReportTest, JsonPathSwapsMarkdownExtension) {
  EXPECT_EQ(ReportJsonPathFor("report.md"), "report.json");
  EXPECT_EQ(ReportJsonPathFor("out/run.md"), "out/run.json");
  EXPECT_EQ(ReportJsonPathFor("report.txt"), "report.txt.json");
  EXPECT_EQ(ReportJsonPathFor("report"), "report.json");
  EXPECT_EQ(ReportJsonPathFor(".md"), ".json");
}

}  // namespace
}  // namespace pinscope::report

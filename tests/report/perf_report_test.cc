// Perf-report writer suite: deterministic Markdown/JSON rendering of a
// fixed Autopsy, resolver labeling, and the .md -> .json path twin rule.
#include "report/perf_report.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/autopsy.h"

namespace pinscope::report {
namespace {

obs::Autopsy FixedAutopsy() {
  obs::Autopsy a;
  a.wall_us = 10000;
  a.workers = 2;
  a.intervals_seen = 6;
  a.intervals_sampled = 6;
  a.sampled = false;

  obs::CriticalSegment first;
  first.key = (std::uint64_t{0} << 48) | 3;
  first.stage = "static";
  first.worker = 0;
  first.start_us = 0;
  first.end_us = 4000;
  obs::CriticalSegment second;
  second.key = (std::uint64_t{1} << 48) | 5;
  second.stage = "dynamic";
  second.worker = 1;
  second.start_us = 4000;
  second.end_us = 9500;
  a.critical_path = {first, second};
  a.critical_path_us = 9500;

  obs::WorkerBreakdown w0;
  w0.worker = 0;
  w0.busy_us = 9000;
  w0.queue_starved_us = 600;
  w0.lock_wait_us = 150;
  w0.other_us = 250;
  w0.stage_count = 4;
  a.worker_breakdown = {w0};

  obs::SlowItem slow;
  slow.key = first.key;
  slow.total_us = 4200;
  slow.stages = {{"static", 4000.0}, {"dynamic", 200.0}};
  a.slowest = {slow};

  obs::LockProfile lock;
  lock.name = "scan_cache";
  lock.contended = 12;
  lock.total_wait_us = 800;
  lock.p99_wait_us = 90;
  a.locks = {lock};
  return a;
}

obs::ItemResolver TestResolver() {
  return [](std::uint64_t key) {
    const bool ios = (key >> 48) != 0;
    return obs::ItemLabel{ios ? "ios" : "android",
                          "app" + std::to_string(key & 0xffff)};
  };
}

TEST(PerfReportTest, MarkdownCarriesEverySectionAndResolvedLabels) {
  const obs::Autopsy autopsy = FixedAutopsy();
  PerfReportInput input;
  input.autopsy = &autopsy;
  input.resolver = TestResolver();
  const std::string md = WritePerfReportMarkdown(input);
  EXPECT_NE(md.find("## Run"), std::string::npos);
  EXPECT_NE(md.find("## Critical path"), std::string::npos);
  EXPECT_NE(md.find("## Worker utilization"), std::string::npos);
  EXPECT_NE(md.find("## Slowest apps"), std::string::npos);
  EXPECT_NE(md.find("## Lock contention"), std::string::npos);
  EXPECT_NE(md.find("android"), std::string::npos);
  EXPECT_NE(md.find("app3"), std::string::npos);
  EXPECT_NE(md.find("app5"), std::string::npos);
  EXPECT_NE(md.find("scan_cache"), std::string::npos);
}

TEST(PerfReportTest, WritersAreDeterministicGivenTheSameAutopsy) {
  const obs::Autopsy autopsy = FixedAutopsy();
  PerfReportInput input;
  input.autopsy = &autopsy;
  input.resolver = TestResolver();
  EXPECT_EQ(WritePerfReportMarkdown(input), WritePerfReportMarkdown(input));
  EXPECT_EQ(WritePerfReportJson(input), WritePerfReportJson(input));
}

TEST(PerfReportTest, JsonTwinCarriesTheStructuredSections) {
  const obs::Autopsy autopsy = FixedAutopsy();
  PerfReportInput input;
  input.autopsy = &autopsy;
  input.resolver = TestResolver();
  const std::string json = WritePerfReportJson(input);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"workers_breakdown\""), std::string::npos);
  EXPECT_NE(json.find("\"slowest\""), std::string::npos);
  EXPECT_NE(json.find("\"locks\""), std::string::npos);
  EXPECT_NE(json.find("\"scan_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"app5\""), std::string::npos);
}

TEST(PerfReportTest, MissingResolverFallsBackToDecimalKeys) {
  const obs::Autopsy autopsy = FixedAutopsy();
  PerfReportInput input;
  input.autopsy = &autopsy;
  const std::string md = WritePerfReportMarkdown(input);
  EXPECT_NE(md.find("item"), std::string::npos);
  EXPECT_EQ(md.find("android"), std::string::npos);
}

TEST(PerfReportTest, JsonPathSwapsMdSuffixOrAppends) {
  EXPECT_EQ(PerfReportJsonPathFor("perf.md"), "perf.json");
  EXPECT_EQ(PerfReportJsonPathFor("out/autopsy.md"), "out/autopsy.json");
  EXPECT_EQ(PerfReportJsonPathFor("perf.txt"), "perf.txt.json");
}

}  // namespace
}  // namespace pinscope::report

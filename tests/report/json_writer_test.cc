#include "report/json_writer.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace pinscope::report {
namespace {

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("quote\"back\\slash"), "quote\\\"back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, BuildsNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("app");
  w.String("com.example");
  w.Key("pins");
  w.BeginArray();
  w.String("sha256/AAA");
  w.String("sha256/BBB");
  w.EndArray();
  w.Key("count");
  w.Int(2);
  w.Key("rate");
  w.Double(0.5, 2);
  w.Key("pinned");
  w.Bool(true);
  w.Key("note");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            "{\"app\":\"com.example\",\"pins\":[\"sha256/AAA\",\"sha256/BBB\"],"
            "\"count\":2,\"rate\":0.50,\"pinned\":true,\"note\":null}");
}

TEST(JsonWriterTest, ArrayOfObjects) {
  JsonWriter w;
  w.BeginArray();
  for (int i = 0; i < 2; ++i) {
    w.BeginObject();
    w.Key("i");
    w.Int(i);
    w.EndObject();
  }
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[{\"i\":0},{\"i\":1}]");
}

TEST(JsonWriterTest, RejectsValueWithoutKeyInObject) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_THROW(w.Int(1), util::Error);
}

TEST(JsonWriterTest, RejectsKeyOutsideObject) {
  JsonWriter w;
  w.BeginArray();
  EXPECT_THROW(w.Key("x"), util::Error);
}

TEST(JsonWriterTest, RejectsConsecutiveKeys) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  EXPECT_THROW(w.Key("b"), util::Error);
}

TEST(JsonWriterTest, RejectsUnbalancedDocuments) {
  JsonWriter open_object;
  open_object.BeginObject();
  EXPECT_THROW((void)open_object.TakeString(), util::Error);

  JsonWriter mismatched;
  mismatched.BeginArray();
  EXPECT_THROW(mismatched.EndObject(), util::Error);
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("empty_arr");
  w.BeginArray();
  w.EndArray();
  w.Key("empty_obj");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{\"empty_arr\":[],\"empty_obj\":{}}");
}

}  // namespace
}  // namespace pinscope::report

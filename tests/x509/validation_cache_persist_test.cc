// Persistence tests for the chain-validation memo (DESIGN.md §15),
// mirroring the scan-cache persist suite: save/load/save byte stability,
// warm lookups identical to recomputation, damaged files loading nothing,
// and concurrent saves surviving the atomic rename. Carries the `stream`
// ctest label so it also runs under the sanitizer presets.
#include "x509/validation_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/cache_file.h"
#include "util/clock.h"
#include "util/rng.h"
#include "x509/issuer.h"
#include "x509/root_store.h"

namespace pinscope::x509 {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

// A root, a store trusting it, and a few issued hosts so the memo holds
// several distinct tuples (valid chains plus an expired one).
struct PersistWorld {
  PersistWorld()
      : root(CertificateIssuer::SelfSignedRoot(
            "persist-root", DistinguishedName{"Persist Root CA", "TestOrg",
                                              "US"},
            -5 * util::kMillisPerYear, 10 * util::kMillisPerYear)),
        store("test", {root.certificate()}) {}

  CertificateChain ChainFor(const std::string& host, bool expired = false) {
    util::Rng rng(std::hash<std::string>{}(host));
    IssueSpec spec;
    spec.subject.set_common_name(host);
    spec.san_dns = {host};
    spec.not_before = -30 * util::kMillisPerDay;
    spec.not_after = expired ? -util::kMillisPerDay : util::kMillisPerYear;
    return {root.Issue(spec, rng), root.certificate()};
  }

  CertificateIssuer root;
  RootStore store;
};

// Populates `cache` with the same deterministic tuple set every time.
void Populate(ValidationCache& cache, PersistWorld& w) {
  const ValidationOptions opts;
  for (const std::string host :
       {"api.persist.com", "cdn.persist.com", "www.persist.com"}) {
    (void)CachedValidateChain(&cache, w.ChainFor(host), host, 0, w.store,
                              opts);
  }
  (void)CachedValidateChain(&cache, w.ChainFor("dead.persist.com", true),
                            "dead.persist.com", 0, w.store, opts);
}

class ValidationCachePersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pinscope_validation_cache_persist_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string PathFor(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(ValidationCachePersistTest, SaveLoadSaveIsByteStable) {
  PersistWorld w;
  ValidationCache original;
  Populate(original, w);
  ASSERT_GT(original.EntryCount(), 0u);

  const std::string first = PathFor("first.pscf");
  const std::string second = PathFor("second.pscf");
  ASSERT_TRUE(original.SaveToFile(first));

  ValidationCache reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(first));
  EXPECT_EQ(reloaded.EntryCount(), original.EntryCount());
  ASSERT_TRUE(reloaded.SaveToFile(second));
  EXPECT_EQ(ReadFileBytes(first), ReadFileBytes(second));
}

TEST_F(ValidationCachePersistTest, WarmLookupsMatchRecomputedResults) {
  PersistWorld w;
  ValidationCache cold;
  Populate(cold, w);
  const std::string path = PathFor("memo.pscf");
  ASSERT_TRUE(cold.SaveToFile(path));

  ValidationCache warm;
  ASSERT_TRUE(warm.LoadFromFile(path));

  const ValidationOptions opts;
  for (const bool expired : {false, true}) {
    const std::string host =
        expired ? "dead.persist.com" : "api.persist.com";
    const CertificateChain chain = w.ChainFor(host, expired);
    const ValidationResult plain =
        ValidateChain(chain, host, 0, w.store, opts);
    const ValidationResult served =
        CachedValidateChain(&warm, chain, host, 0, w.store, opts);
    EXPECT_EQ(served.status, plain.status) << host;
    EXPECT_EQ(served.failing_index, plain.failing_index) << host;
  }
  // Both lookups above were served from the loaded memo, not recomputed.
  EXPECT_EQ(warm.Stats().hits, 2u);
  EXPECT_EQ(warm.Stats().misses, 0u);
}

TEST_F(ValidationCachePersistTest, DamagedFilesLoadNothing) {
  PersistWorld w;
  ValidationCache original;
  Populate(original, w);
  const std::string path = PathFor("memo.pscf");
  ASSERT_TRUE(original.SaveToFile(path));

  {  // Flip a payload byte.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    char last = 0;
    f.seekg(-1, std::ios::end);
    f.read(&last, 1);
    f.seekp(-1, std::ios::end);
    last = static_cast<char>(last ^ 0x40);
    f.write(&last, 1);
  }
  ValidationCache corrupt;
  EXPECT_FALSE(corrupt.LoadFromFile(path));
  EXPECT_EQ(corrupt.EntryCount(), 0u);

  ASSERT_TRUE(original.SaveToFile(path));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  ValidationCache truncated;
  EXPECT_FALSE(truncated.LoadFromFile(path));
  EXPECT_EQ(truncated.EntryCount(), 0u);

  // The scan cache's kind tag must not decode as a validation memo.
  ASSERT_TRUE(util::WriteCacheFile(path, ValidationCache::kFileKind + 1,
                                   ValidationCache::kFileVersion, {1, 2, 3}));
  ValidationCache foreign;
  EXPECT_FALSE(foreign.LoadFromFile(path));
  EXPECT_EQ(foreign.EntryCount(), 0u);

  ValidationCache missing;
  EXPECT_FALSE(missing.LoadFromFile(PathFor("never-written.pscf")));
  EXPECT_EQ(missing.EntryCount(), 0u);
}

TEST_F(ValidationCachePersistTest, ConcurrentSavesAreAtomicAndLastWriterWins) {
  PersistWorld w;
  ValidationCache a, b;
  Populate(a, w);
  Populate(b, w);
  ASSERT_EQ(a.EntryCount(), b.EntryCount());

  const std::string path = PathFor("shared.pscf");
  const std::string reference = PathFor("reference.pscf");
  ASSERT_TRUE(a.SaveToFile(reference));

  for (int round = 0; round < 8; ++round) {
    std::thread ta([&] { ASSERT_TRUE(a.SaveToFile(path)); });
    std::thread tb([&] { ASSERT_TRUE(b.SaveToFile(path)); });
    ta.join();
    tb.join();
    EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(reference)) << round;
    ValidationCache loaded;
    EXPECT_TRUE(loaded.LoadFromFile(path)) << round;
    EXPECT_EQ(loaded.EntryCount(), a.EntryCount()) << round;
  }
}

}  // namespace
}  // namespace pinscope::x509

#include "x509/root_store.h"

#include <gtest/gtest.h>

#include "util/clock.h"

namespace pinscope::x509 {
namespace {

TEST(RootStoreTest, CatalogIsDeterministic) {
  const auto& a = PublicCaCatalog::Instance();
  const RootStore s1 = a.MozillaStore();
  const RootStore s2 = a.MozillaStore();
  ASSERT_EQ(s1.roots().size(), s2.roots().size());
  for (std::size_t i = 0; i < s1.roots().size(); ++i) {
    EXPECT_EQ(s1.roots()[i], s2.roots()[i]);
  }
}

TEST(RootStoreTest, StoresDifferAsConfigured) {
  const auto& catalog = PublicCaCatalog::Instance();
  const RootStore mozilla = catalog.MozillaStore();
  const RootStore aosp = catalog.AospStore();
  const RootStore ios = catalog.IosStore();

  // AOSP carries obscure anchors Mozilla does not ship.
  const Certificate* asiapac = aosp.FindBySubject("AsiaPac Commerce Root");
  ASSERT_NE(asiapac, nullptr);
  EXPECT_FALSE(mozilla.IsTrustedRoot(*asiapac));
  EXPECT_FALSE(ios.IsTrustedRoot(*asiapac));
}

TEST(RootStoreTest, AospShipsAnExpiredAnchor) {
  const RootStore aosp = PublicCaCatalog::Instance().AospStore();
  const Certificate* expired = aosp.FindBySubject("RegionalGov National Root");
  ASSERT_NE(expired, nullptr);
  EXPECT_LT(expired->not_after(), util::kStudyEpoch);
}

TEST(RootStoreTest, OemStoreExtendsAosp) {
  const auto& catalog = PublicCaCatalog::Instance();
  const RootStore aosp = catalog.AospStore();
  const RootStore oem = catalog.OemAugmentedStore();
  EXPECT_EQ(oem.roots().size(), aosp.roots().size() + 1);
  EXPECT_NE(oem.FindBySubject("HandsetMaker Device Root CA"), nullptr);
  EXPECT_EQ(aosp.FindBySubject("HandsetMaker Device Root CA"), nullptr);
}

TEST(RootStoreTest, AddRootMakesAnchorTrusted) {
  RootStore store("test", {});
  const auto& ca = PublicCaCatalog::Instance().ByLabel("ca.globaltrust");
  EXPECT_FALSE(store.IsTrustedRoot(ca.certificate()));
  store.AddRoot(ca.certificate());
  EXPECT_TRUE(store.IsTrustedRoot(ca.certificate()));
}

TEST(RootStoreTest, ByLabelThrowsOnUnknown) {
  EXPECT_THROW((void)PublicCaCatalog::Instance().ByLabel("ca.nonexistent"),
               util::Error);
}

TEST(RootStoreTest, FindBySubjectMissReturnsNull) {
  const RootStore mozilla = PublicCaCatalog::Instance().MozillaStore();
  EXPECT_EQ(mozilla.FindBySubject("No Such CA"), nullptr);
}

}  // namespace
}  // namespace pinscope::x509

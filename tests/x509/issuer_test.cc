// Issuance properties across the algorithm × depth × validity grid.
#include "x509/issuer.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "util/rng.h"
#include "x509/root_store.h"
#include "x509/validation.h"

namespace pinscope::x509 {
namespace {

TEST(IssuerTest, SignaturesBindContentToIssuer) {
  const CertificateIssuer root = CertificateIssuer::SelfSignedRoot(
      "sig-root", DistinguishedName{"Sig Root", "", "US"}, -util::kMillisPerYear,
      util::kMillisPerYear * 10);
  util::Rng rng(1);
  IssueSpec spec;
  spec.subject.set_common_name("a.example.com");
  const Certificate cert = root.Issue(spec, rng);
  EXPECT_TRUE(VerifySignature(cert, root.certificate().spki()));
  // Wrong issuer key material fails verification.
  const CertificateIssuer other = CertificateIssuer::SelfSignedRoot(
      "sig-other", DistinguishedName{"Other Root", "", "US"},
      -util::kMillisPerYear, util::kMillisPerYear * 10);
  EXPECT_FALSE(VerifySignature(cert, other.certificate().spki()));
}

TEST(IssuerTest, SerialsAreUniquePerIssuer) {
  const CertificateIssuer root = CertificateIssuer::SelfSignedRoot(
      "serial-root", DistinguishedName{"Serial Root", "", "US"},
      -util::kMillisPerYear, util::kMillisPerYear * 10);
  util::Rng rng(2);
  std::set<std::string> serials;
  for (int i = 0; i < 50; ++i) {
    IssueSpec spec;
    spec.subject.set_common_name("host" + std::to_string(i % 7) + ".example.com");
    EXPECT_TRUE(serials.insert(root.Issue(spec, rng).serial()).second);
  }
}

TEST(IssuerTest, SelfSignedRootIsItsOwnIssuer) {
  const CertificateIssuer root = CertificateIssuer::SelfSignedRoot(
      "self-root", DistinguishedName{"Self Root", "", "US"},
      -util::kMillisPerYear, util::kMillisPerYear);
  const Certificate& cert = root.certificate();
  EXPECT_TRUE(cert.IsSelfIssued());
  EXPECT_TRUE(cert.is_ca());
  EXPECT_TRUE(VerifySignature(cert, cert.spki()));
}

TEST(IssuerTest, DeterministicRootsFromLabels) {
  const auto a = CertificateIssuer::SelfSignedRoot(
      "det-root", DistinguishedName{"Det", "", "US"}, 0, util::kMillisPerYear);
  const auto b = CertificateIssuer::SelfSignedRoot(
      "det-root", DistinguishedName{"Det", "", "US"}, 0, util::kMillisPerYear);
  EXPECT_EQ(a.certificate(), b.certificate());
}

// Chains of depth 2..5 must all validate when anchored.
class ChainDepth : public ::testing::TestWithParam<int> {};

TEST_P(ChainDepth, DeepChainsValidate) {
  const int depth = GetParam();
  const CertificateIssuer root = CertificateIssuer::SelfSignedRoot(
      "depth-root", DistinguishedName{"Depth Root", "", "US"},
      -util::kMillisPerYear, 10 * util::kMillisPerYear);
  RootStore store("test", {root.certificate()});

  std::vector<CertificateIssuer> intermediates;
  const CertificateIssuer* current = &root;
  for (int i = 0; i < depth - 2; ++i) {
    IssueSpec spec;
    spec.subject.set_common_name("Intermediate " + std::to_string(i));
    spec.not_before = -util::kMillisPerYear;
    spec.not_after = 5 * util::kMillisPerYear;
    spec.is_ca = true;
    intermediates.push_back(
        current->CreateIntermediate(spec, "depth-inter-" + std::to_string(i)));
    current = &intermediates.back();
  }

  util::Rng rng(3);
  IssueSpec leaf_spec;
  leaf_spec.subject.set_common_name("deep.example.com");
  leaf_spec.san_dns = {"deep.example.com"};
  leaf_spec.not_before = -util::kMillisPerDay;
  leaf_spec.not_after = util::kMillisPerYear;
  CertificateChain chain = {current->Issue(leaf_spec, rng)};
  for (auto it = intermediates.rbegin(); it != intermediates.rend(); ++it) {
    chain.insert(chain.begin() + 1, it->certificate());
  }
  // Rebuild in leaf-first order: leaf, deepest intermediate, ..., root.
  chain.clear();
  chain.push_back(current->Issue(leaf_spec, rng));
  for (auto it = intermediates.rbegin(); it != intermediates.rend(); ++it) {
    chain.push_back(it->certificate());
  }
  chain.push_back(root.certificate());
  ASSERT_EQ(static_cast<int>(chain.size()), depth);

  const auto result = ValidateChain(chain, "deep.example.com", 0, store);
  EXPECT_TRUE(result.ok()) << "depth " << depth << ": "
                           << ValidationStatusName(result.status);
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainDepth, ::testing::Values(2, 3, 4, 5));

// Every key algorithm issues verifiable certificates with distinct SPKIs.
class KeyAlgorithms : public ::testing::TestWithParam<crypto::KeyAlgorithm> {};

TEST_P(KeyAlgorithms, IssueForKeyEmbedsAlgorithm) {
  const crypto::KeyPair key = crypto::KeyPair::FromLabel("algo-key", GetParam());
  const CertificateIssuer root = CertificateIssuer::SelfSignedRoot(
      "algo-root", DistinguishedName{"Algo Root", "", "US"},
      -util::kMillisPerYear, util::kMillisPerYear * 10);
  IssueSpec spec;
  spec.subject.set_common_name("algo.example.com");
  const Certificate cert = root.IssueForKey(spec, key);
  EXPECT_EQ(cert.spki(), key.SubjectPublicKeyInfo());
  EXPECT_TRUE(VerifySignature(cert, root.certificate().spki()));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, KeyAlgorithms,
                         ::testing::Values(crypto::KeyAlgorithm::kRsa2048,
                                           crypto::KeyAlgorithm::kRsa4096,
                                           crypto::KeyAlgorithm::kEcdsaP256));

}  // namespace
}  // namespace pinscope::x509

#include "x509/pem.h"

#include <gtest/gtest.h>

#include "util/strings.h"
#include "x509/issuer.h"

namespace pinscope::x509 {
namespace {

Certificate MakeCert(const std::string& cn) {
  IssueSpec spec;
  spec.subject.set_common_name(cn);
  return CertificateIssuer::SelfSignedLeaf("pem:" + cn, spec);
}

TEST(PemTest, EncodeCarriesDelimitersAnd64ColumnBody) {
  const std::string pem = PemEncode(MakeCert("pem.example.com"));
  EXPECT_TRUE(util::StartsWith(pem, kPemBegin));
  EXPECT_TRUE(util::Contains(pem, kPemEnd));
  for (const std::string& line : util::Split(pem, '\n')) {
    EXPECT_LE(line.size(), 64u);
  }
}

TEST(PemTest, RoundTrips) {
  const Certificate cert = MakeCert("roundtrip.example.com");
  const auto decoded = PemDecode(PemEncode(cert));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cert);
}

TEST(PemTest, DecodeFindsBlockInsideOtherText) {
  const Certificate cert = MakeCert("embedded.example.com");
  const std::string blob = "prefix junk\n" + PemEncode(cert) + "\nsuffix junk";
  const auto decoded = PemDecode(blob);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cert);
}

TEST(PemTest, DecodeAllFindsEveryBlock) {
  const Certificate a = MakeCert("a.example.com");
  const Certificate b = MakeCert("b.example.com");
  const std::string blob = PemEncode(a) + "garbage in the middle\n" + PemEncode(b);
  const auto all = PemDecodeAll(blob);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], a);
  EXPECT_EQ(all[1], b);
}

TEST(PemTest, DecodeAllSkipsCorruptBlocks) {
  const Certificate good = MakeCert("good.example.com");
  const std::string corrupt = std::string(kPemBegin) + "\n!!!not base64!!!\n" +
                              std::string(kPemEnd) + "\n" + PemEncode(good);
  const auto all = PemDecodeAll(corrupt);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], good);
}

TEST(PemTest, DecodeRejectsMissingDelimiters) {
  EXPECT_FALSE(PemDecode("no pem here").has_value());
  EXPECT_FALSE(PemDecode(std::string(kPemBegin) + " truncated").has_value());
}

}  // namespace
}  // namespace pinscope::x509

#include "x509/validation.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"
#include "x509/issuer.h"
#include "x509/root_store.h"

namespace pinscope::x509 {
namespace {

// A small world: root → intermediate → leaf for api.test.com.
struct World {
  World()
      : root(CertificateIssuer::SelfSignedRoot(
            "test-root", DistinguishedName{"Test Root CA", "TestOrg", "US"},
            -5 * util::kMillisPerYear, 10 * util::kMillisPerYear)),
        inter([this] {
          IssueSpec spec;
          spec.subject = DistinguishedName{"Test Intermediate", "TestOrg", "US"};
          spec.not_before = -util::kMillisPerYear;
          spec.not_after = 5 * util::kMillisPerYear;
          spec.is_ca = true;
          return root.CreateIntermediate(spec, "test-inter");
        }()),
        store("test", {root.certificate()}) {
    util::Rng rng(7);
    IssueSpec leaf_spec;
    leaf_spec.subject.set_common_name("api.test.com");
    leaf_spec.san_dns = {"api.test.com"};
    leaf_spec.not_before = -30 * util::kMillisPerDay;
    leaf_spec.not_after = util::kMillisPerYear;
    leaf = inter.Issue(leaf_spec, rng);
    chain = {leaf, inter.certificate(), root.certificate()};
  }

  CertificateIssuer root;
  CertificateIssuer inter;
  Certificate leaf;
  CertificateChain chain;
  RootStore store;
};

TEST(ValidationTest, AcceptsValidChain) {
  World w;
  const auto result = ValidateChain(w.chain, "api.test.com", 0, w.store);
  EXPECT_TRUE(result.ok()) << ValidationStatusName(result.status);
}

TEST(ValidationTest, RejectsEmptyChain) {
  World w;
  EXPECT_EQ(ValidateChain({}, "api.test.com", 0, w.store).status,
            ValidationStatus::kEmptyChain);
}

TEST(ValidationTest, RejectsHostnameMismatch) {
  World w;
  const auto result = ValidateChain(w.chain, "evil.com", 0, w.store);
  EXPECT_EQ(result.status, ValidationStatus::kHostnameMismatch);
  EXPECT_EQ(result.failing_index, 0u);
}

TEST(ValidationTest, HostnameCheckCanBeDisabled) {
  World w;
  ValidationOptions opts;
  opts.check_hostname = false;
  EXPECT_TRUE(ValidateChain(w.chain, "evil.com", 0, w.store, opts).ok());
}

TEST(ValidationTest, RejectsExpiredLeaf) {
  World w;
  const auto result =
      ValidateChain(w.chain, "api.test.com", 2 * util::kMillisPerYear, w.store);
  EXPECT_EQ(result.status, ValidationStatus::kExpired);
  EXPECT_EQ(result.failing_index, 0u);
}

TEST(ValidationTest, RejectsNotYetValidLeaf) {
  World w;
  const auto result =
      ValidateChain(w.chain, "api.test.com", -util::kMillisPerYear, w.store);
  EXPECT_EQ(result.status, ValidationStatus::kNotYetValid);
}

TEST(ValidationTest, ExpiryCheckCanBeDisabled) {
  World w;
  ValidationOptions opts;
  opts.check_expiry = false;
  EXPECT_TRUE(
      ValidateChain(w.chain, "api.test.com", 2 * util::kMillisPerYear, w.store, opts)
          .ok());
}

TEST(ValidationTest, RejectsUntrustedRoot) {
  World w;
  RootStore empty("empty", {});
  const auto result = ValidateChain(w.chain, "api.test.com", 0, empty);
  EXPECT_EQ(result.status, ValidationStatus::kUntrustedRoot);
}

TEST(ValidationTest, RejectsOutOfOrderChain) {
  World w;
  CertificateChain shuffled = {w.inter.certificate(), w.leaf, w.root.certificate()};
  const auto result = ValidateChain(shuffled, "api.test.com", 0, w.store);
  EXPECT_EQ(result.status, ValidationStatus::kBadChainOrder);
}

TEST(ValidationTest, RejectsTamperedSignature) {
  World w;
  CertificateData data = w.leaf.data();
  data.signature[0] ^= 0xff;
  CertificateChain chain = {Certificate(data), w.inter.certificate(),
                            w.root.certificate()};
  const auto result = ValidateChain(chain, "api.test.com", 0, w.store);
  EXPECT_EQ(result.status, ValidationStatus::kBadSignature);
}

TEST(ValidationTest, RejectsForgedContentWithOldSignature) {
  World w;
  CertificateData data = w.leaf.data();
  data.san_dns.push_back("attacker.com");  // forged SAN, stale signature
  CertificateChain chain = {Certificate(data), w.inter.certificate(),
                            w.root.certificate()};
  EXPECT_EQ(ValidateChain(chain, "attacker.com", 0, w.store).status,
            ValidationStatus::kBadSignature);
}

TEST(ValidationTest, RejectsRevokedSerial) {
  World w;
  ValidationOptions opts;
  opts.revoked_serials = {w.leaf.serial()};
  const auto result = ValidateChain(w.chain, "api.test.com", 0, w.store, opts);
  EXPECT_EQ(result.status, ValidationStatus::kRevoked);
}

TEST(ValidationTest, NonRevokedSerialPassesAgainstPopulatedList) {
  World w;
  ValidationOptions opts;
  opts.revoked_serials = {"serial:not-the-leaf", "serial:also-not-the-leaf"};
  EXPECT_TRUE(ValidateChain(w.chain, "api.test.com", 0, w.store, opts).ok());
}

TEST(RevocationListTest, SortsAndDeduplicatesOnConstruction) {
  const RevocationList list({"serial-c", "serial-a", "serial-b", "serial-a"});
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(std::is_sorted(list.serials().begin(), list.serials().end()));
}

TEST(RevocationListTest, BinarySearchHitsAndMisses) {
  const RevocationList list({"bbb", "ddd", "fff"});
  // Hits.
  EXPECT_TRUE(list.Contains("bbb"));
  EXPECT_TRUE(list.Contains("ddd"));
  EXPECT_TRUE(list.Contains("fff"));
  // Misses on every side of the sorted members.
  EXPECT_FALSE(list.Contains("aaa"));
  EXPECT_FALSE(list.Contains("ccc"));
  EXPECT_FALSE(list.Contains("eee"));
  EXPECT_FALSE(list.Contains("zzz"));
  EXPECT_FALSE(list.Contains(""));
  EXPECT_FALSE(RevocationList{}.Contains("bbb"));
}

TEST(RevocationListTest, AddKeepsSortedUniqueAndChangesToken) {
  RevocationList list({"m"});
  const std::uint64_t before = list.Token();
  list.Add("a");
  list.Add("z");
  list.Add("a");  // duplicate, ignored
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(std::is_sorted(list.serials().begin(), list.serials().end()));
  EXPECT_TRUE(list.Contains("a"));
  EXPECT_TRUE(list.Contains("z"));
  EXPECT_NE(list.Token(), before);
  // The token is content-derived: an identical list built differently agrees.
  EXPECT_EQ(list.Token(), RevocationList({"z", "a", "m"}).Token());
}

TEST(ValidationTest, AcceptsChainWithoutRootWhenAnchorInStore) {
  // Servers often send leaf+intermediate only; the validator must find the
  // root in the store.
  World w;
  CertificateChain partial = {w.leaf, w.inter.certificate()};
  EXPECT_TRUE(ValidateChain(partial, "api.test.com", 0, w.store).ok());
}

TEST(ValidationTest, SelfSignedLeafUntrustedByDefault) {
  IssueSpec spec;
  spec.subject.set_common_name("self.test.com");
  spec.san_dns = {"self.test.com"};
  spec.not_before = -util::kMillisPerDay;
  spec.not_after = util::kMillisPerYear;
  const Certificate self_signed = CertificateIssuer::SelfSignedLeaf("ss", spec);
  RootStore store("sys", {});
  EXPECT_EQ(ValidateChain({self_signed}, "self.test.com", 0, store).status,
            ValidationStatus::kUntrustedRoot);
}

TEST(ValidationTest, SelfSignedLeafTrustedWhenAnchored) {
  IssueSpec spec;
  spec.subject.set_common_name("self.test.com");
  spec.san_dns = {"self.test.com"};
  spec.not_before = -util::kMillisPerDay;
  spec.not_after = util::kMillisPerYear;
  const Certificate self_signed = CertificateIssuer::SelfSignedLeaf("ss", spec);
  RootStore store("app-bundled", {self_signed});
  EXPECT_TRUE(ValidateChain({self_signed}, "self.test.com", 0, store).ok());
}

TEST(ValidationTest, ChainsToPublicRootIgnoresHostnameAndExpiry) {
  World w;
  EXPECT_TRUE(ChainsToPublicRoot(w.chain, w.store));
  RootStore empty("none", {});
  EXPECT_FALSE(ChainsToPublicRoot(w.chain, empty));
  EXPECT_FALSE(ChainsToPublicRoot({}, w.store));
}

TEST(ValidationTest, StatusNamesAreDistinct) {
  std::set<std::string_view> names;
  for (auto s : {ValidationStatus::kOk, ValidationStatus::kEmptyChain,
                 ValidationStatus::kBadSignature, ValidationStatus::kBadChainOrder,
                 ValidationStatus::kNotCa, ValidationStatus::kExpired,
                 ValidationStatus::kNotYetValid, ValidationStatus::kHostnameMismatch,
                 ValidationStatus::kUntrustedRoot, ValidationStatus::kRevoked,
                 ValidationStatus::kPathLenExceeded}) {
    names.insert(ValidationStatusName(s));
  }
  EXPECT_EQ(names.size(), 11u);
}

TEST(ValidationTest, PathLenConstraintEnforced) {
  // Root with pathLen=0 may only issue end-entity certs: a chain with an
  // intermediate beneath it must be rejected.
  const CertificateIssuer root = CertificateIssuer::SelfSignedRoot(
      "plc-root", DistinguishedName{"PLC Root", "", "US"},
      -util::kMillisPerYear, 10 * util::kMillisPerYear);
  // Recreate the root with a pathLen by issuing an intermediate carrying one.
  IssueSpec constrained;
  constrained.subject = DistinguishedName{"PLC Constrained CA", "", "US"};
  constrained.not_before = -util::kMillisPerYear;
  constrained.not_after = 5 * util::kMillisPerYear;
  constrained.is_ca = true;
  constrained.path_len = 0;  // no further intermediates allowed
  const CertificateIssuer mid = root.CreateIntermediate(constrained, "plc-mid");
  EXPECT_EQ(mid.certificate().path_len(), 0);

  IssueSpec sub_spec;
  sub_spec.subject = DistinguishedName{"PLC Sub CA", "", "US"};
  sub_spec.not_before = -util::kMillisPerYear;
  sub_spec.not_after = 5 * util::kMillisPerYear;
  sub_spec.is_ca = true;
  const CertificateIssuer sub = mid.CreateIntermediate(sub_spec, "plc-sub");

  util::Rng rng(8);
  IssueSpec leaf_spec;
  leaf_spec.subject.set_common_name("plc.example.com");
  leaf_spec.san_dns = {"plc.example.com"};
  leaf_spec.not_before = -util::kMillisPerDay;
  leaf_spec.not_after = util::kMillisPerYear;

  RootStore store("plc", {root.certificate()});

  // Direct issuance under the constrained CA: fine (0 intermediates below).
  const CertificateChain ok_chain = {mid.Issue(leaf_spec, rng),
                                     mid.certificate(), root.certificate()};
  EXPECT_TRUE(ValidateChain(ok_chain, "plc.example.com", 0, store).ok());

  // One more intermediate below the constrained CA: rejected.
  const CertificateChain bad_chain = {sub.Issue(leaf_spec, rng),
                                      sub.certificate(), mid.certificate(),
                                      root.certificate()};
  const auto result = ValidateChain(bad_chain, "plc.example.com", 0, store);
  EXPECT_EQ(result.status, ValidationStatus::kPathLenExceeded);
}

TEST(ValidationTest, PathLenRoundTripsThroughDer) {
  IssueSpec spec;
  spec.subject = DistinguishedName{"RT CA", "", "US"};
  spec.is_ca = true;
  spec.path_len = 2;
  const CertificateIssuer root = CertificateIssuer::SelfSignedRoot(
      "rt-root", DistinguishedName{"RT Root", "", "US"}, 0, util::kMillisPerYear);
  const CertificateIssuer mid = root.CreateIntermediate(spec, "rt-mid");
  const auto parsed = Certificate::ParseDer(mid.certificate().DerBytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->path_len(), 2);
}

}  // namespace
}  // namespace pinscope::x509

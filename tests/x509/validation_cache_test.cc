// Unit tests for the chain-validation memo: key sensitivity, first-insert-
// wins semantics, cached/uncached agreement, and multi-threaded stress (the
// suite carries the `dynamic` ctest label and runs under ThreadSanitizer).
#include "x509/validation_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/clock.h"
#include "util/rng.h"
#include "x509/issuer.h"
#include "x509/root_store.h"

namespace pinscope::x509 {
namespace {

struct World {
  World()
      : root(CertificateIssuer::SelfSignedRoot(
            "vc-root", DistinguishedName{"VC Root CA", "TestOrg", "US"},
            -5 * util::kMillisPerYear, 10 * util::kMillisPerYear)),
        store("test", {root.certificate()}) {
    util::Rng rng(7);
    IssueSpec spec;
    spec.subject.set_common_name("api.test.com");
    spec.san_dns = {"api.test.com"};
    spec.not_before = -30 * util::kMillisPerDay;
    spec.not_after = util::kMillisPerYear;
    leaf = root.Issue(spec, rng);
    chain = {leaf, root.certificate()};
  }

  CertificateIssuer root;
  Certificate leaf;
  CertificateChain chain;
  RootStore store;
};

TEST(ValidationCacheTest, CachedAgreesWithUncachedOnHitAndMiss) {
  World w;
  ValidationCache cache;
  const ValidationOptions opts;

  const ValidationResult plain =
      ValidateChain(w.chain, "api.test.com", 0, w.store, opts);
  const ValidationResult miss =
      CachedValidateChain(&cache, w.chain, "api.test.com", 0, w.store, opts);
  const ValidationResult hit =
      CachedValidateChain(&cache, w.chain, "api.test.com", 0, w.store, opts);

  EXPECT_EQ(plain.status, miss.status);
  EXPECT_EQ(plain.failing_index, miss.failing_index);
  EXPECT_EQ(plain.status, hit.status);
  EXPECT_EQ(plain.failing_index, hit.failing_index);

  const ValidationCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ValidationCacheTest, NullCacheFallsThroughToPlainValidation) {
  World w;
  const ValidationResult direct =
      CachedValidateChain(nullptr, w.chain, "api.test.com", 0, w.store, {});
  EXPECT_TRUE(direct.ok());
}

TEST(ValidationCacheTest, FailuresAreMemoizedToo) {
  World w;
  ValidationCache cache;
  const ValidationResult miss =
      CachedValidateChain(&cache, w.chain, "evil.com", 0, w.store, {});
  const ValidationResult hit =
      CachedValidateChain(&cache, w.chain, "evil.com", 0, w.store, {});
  EXPECT_EQ(miss.status, ValidationStatus::kHostnameMismatch);
  EXPECT_EQ(hit.status, ValidationStatus::kHostnameMismatch);
  EXPECT_EQ(hit.failing_index, miss.failing_index);
  EXPECT_EQ(cache.Stats().hits, 1u);
}

TEST(ValidationCacheTest, KeyIsSensitiveToEveryTupleComponent) {
  World w;
  const ValidationOptions opts;
  const auto base = ValidationCache::MakeKey(w.chain, "api.test.com", 0,
                                             w.store, opts);

  // Hostname.
  EXPECT_FALSE(base == ValidationCache::MakeKey(w.chain, "evil.com", 0,
                                                w.store, opts));
  // Sim-time.
  EXPECT_FALSE(base == ValidationCache::MakeKey(w.chain, "api.test.com",
                                                util::kMillisPerDay, w.store,
                                                opts));
  // Store content.
  RootStore other("other", {});
  EXPECT_FALSE(base == ValidationCache::MakeKey(w.chain, "api.test.com", 0,
                                                other, opts));
  // Option bits.
  ValidationOptions lax;
  lax.check_hostname = false;
  EXPECT_FALSE(base == ValidationCache::MakeKey(w.chain, "api.test.com", 0,
                                                w.store, lax));
  // Revocation content (same flags, different list).
  ValidationOptions revoking;
  revoking.revoked_serials = {w.leaf.serial()};
  EXPECT_FALSE(base == ValidationCache::MakeKey(w.chain, "api.test.com", 0,
                                                w.store, revoking));
  // Chain content.
  const CertificateChain leaf_only = {w.leaf};
  EXPECT_FALSE(base == ValidationCache::MakeKey(leaf_only, "api.test.com", 0,
                                                w.store, opts));

  // And reflexively: rebuilding the same tuple gives the same key.
  EXPECT_TRUE(base == ValidationCache::MakeKey(w.chain, "api.test.com", 0,
                                               w.store, opts));
}

TEST(ValidationCacheTest, EquivalentStoresShareContentTokens) {
  World w;
  // A store built with the same roots in a different way has the same token,
  // so per-destination ephemeral stores (custom PKI) hit across rebuilds.
  RootStore rebuilt("different-label", {w.root.certificate()});
  EXPECT_EQ(w.store.ContentToken(), rebuilt.ContentToken());

  RootStore augmented("aug", {w.root.certificate()});
  augmented.AddRoot(w.leaf);
  EXPECT_NE(w.store.ContentToken(), augmented.ContentToken());
}

TEST(ValidationCacheTest, FirstInsertWins) {
  World w;
  ValidationCache cache;
  const auto key =
      ValidationCache::MakeKey(w.chain, "api.test.com", 0, w.store, {});

  ValidationResult first;
  first.status = ValidationStatus::kOk;
  ValidationResult second;
  second.status = ValidationStatus::kExpired;
  second.failing_index = 1;

  const ValidationResult r1 = cache.Insert(key, first);
  const ValidationResult r2 = cache.Insert(key, second);
  EXPECT_EQ(r1.status, ValidationStatus::kOk);
  EXPECT_EQ(r2.status, ValidationStatus::kOk);  // resident entry returned
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(ValidationCacheTest, ConcurrentMixedWorkloadIsSafeAndConsistent) {
  World w;
  ValidationCache cache;
  const ValidationOptions opts;
  constexpr int kThreads = 8;
  constexpr int kReps = 50;

  std::vector<std::thread> workers;
  std::vector<int> ok_counts(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kReps; ++i) {
        // Two distinct tuples, hammered from every thread.
        const auto good = CachedValidateChain(&cache, w.chain, "api.test.com",
                                              0, w.store, opts);
        const auto bad = CachedValidateChain(&cache, w.chain, "evil.com", 0,
                                             w.store, opts);
        if (good.ok() && bad.status == ValidationStatus::kHostnameMismatch) {
          ++ok_counts[t];
        }
      }
    });
  }
  for (std::thread& th : workers) th.join();

  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok_counts[t], kReps);
  const ValidationCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.lookups, static_cast<std::size_t>(kThreads * kReps * 2));
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GE(stats.hits, stats.lookups - 2u * kThreads);  // ≤ one miss/thread/tuple
}

}  // namespace
}  // namespace pinscope::x509

#include "x509/ct_log.h"

#include <gtest/gtest.h>

#include "util/base64.h"
#include "util/hex.h"
#include "x509/issuer.h"

namespace pinscope::x509 {
namespace {

Certificate MakeCert(const std::string& cn) {
  IssueSpec spec;
  spec.subject.set_common_name(cn);
  return CertificateIssuer::SelfSignedLeaf("ct:" + cn, spec);
}

TEST(CtLogTest, FindsBySha256HexDigest) {
  CtLog log;
  const Certificate cert = MakeCert("ct.example.com");
  log.Add(cert);
  const auto digest = cert.SpkiSha256();
  const auto found =
      log.FindBySpkiDigest(util::HexEncode(util::Bytes(digest.begin(), digest.end())));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], cert);
}

TEST(CtLogTest, FindsBySha256Base64Digest) {
  CtLog log;
  const Certificate cert = MakeCert("b64.example.com");
  log.Add(cert);
  const auto digest = cert.SpkiSha256();
  const auto found = log.FindBySpkiDigest(
      util::Base64Encode(util::Bytes(digest.begin(), digest.end())));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], cert);
}

TEST(CtLogTest, FindsBySha1Digest) {
  CtLog log;
  const Certificate cert = MakeCert("sha1.example.com");
  log.Add(cert);
  const auto digest = cert.SpkiSha1();
  EXPECT_EQ(log.FindBySpkiDigest(
                   util::HexEncode(util::Bytes(digest.begin(), digest.end())))
                .size(),
            1u);
}

TEST(CtLogTest, UnknownDigestYieldsEmpty) {
  CtLog log;
  log.Add(MakeCert("known.example.com"));
  EXPECT_TRUE(log.FindBySpkiDigest(std::string(64, 'a')).empty());
  EXPECT_TRUE(log.FindBySpkiDigest("not a digest at all").empty());
}

TEST(CtLogTest, AddIsIdempotentPerFingerprint) {
  CtLog log;
  const Certificate cert = MakeCert("dup.example.com");
  log.Add(cert);
  log.Add(cert);
  EXPECT_EQ(log.size(), 1u);
}

TEST(CtLogTest, SharedKeyReturnsAllCertificates) {
  // Renewal with key reuse: two certs, one SPKI — a digest query must return
  // both (exactly what crt.sh does).
  CtLog log;
  const crypto::KeyPair key = crypto::KeyPair::FromLabel("reused");
  const CertificateIssuer ca = CertificateIssuer::SelfSignedRoot(
      "ct-ca", DistinguishedName{"CT CA", "", "US"}, -util::kMillisPerYear,
      util::kMillisPerYear * 10);
  IssueSpec s1;
  s1.subject.set_common_name("renewed.example.com");
  IssueSpec s2 = s1;
  s2.not_after = 2 * util::kMillisPerYear;
  log.Add(ca.IssueForKey(s1, key));
  log.Add(ca.IssueForKey(s2, key));
  const auto digest = key.SpkiSha256();
  EXPECT_EQ(log.FindBySpkiDigest(
                   util::HexEncode(util::Bytes(digest.begin(), digest.end())))
                .size(),
            2u);
}

TEST(CtLogTest, FindBySubjectCn) {
  CtLog log;
  const Certificate cert = MakeCert("by-cn.example.com");
  log.Add(cert);
  EXPECT_EQ(log.FindBySubjectCn("by-cn.example.com").size(), 1u);
  EXPECT_TRUE(log.FindBySubjectCn("missing.example.com").empty());
}

}  // namespace
}  // namespace pinscope::x509

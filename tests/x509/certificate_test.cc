#include "x509/certificate.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "x509/issuer.h"

namespace pinscope::x509 {
namespace {

Certificate MakeLeaf(const std::string& host) {
  IssueSpec spec;
  spec.subject.set_common_name(host);
  spec.san_dns = {host, "alt." + host};
  spec.not_before = 0;
  spec.not_after = util::kMillisPerYear;
  return CertificateIssuer::SelfSignedLeaf("leaf:" + host, spec);
}

TEST(CertificateTest, DerRoundTrips) {
  const Certificate cert = MakeLeaf("api.example.com");
  const auto parsed = Certificate::ParseDer(cert.DerBytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, cert);
  EXPECT_EQ(parsed->subject().common_name(), "api.example.com");
  EXPECT_EQ(parsed->san_dns().size(), 2u);
  EXPECT_EQ(parsed->signature(), cert.signature());
}

TEST(CertificateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Certificate::ParseDer(util::ToBytes("not a cert")).has_value());
  EXPECT_FALSE(Certificate::ParseDer({}).has_value());
}

TEST(CertificateTest, ParseRejectsTruncatedFields) {
  const Certificate cert = MakeLeaf("x.example.com");
  util::Bytes der = cert.DerBytes();
  der.resize(der.size() / 2);
  // Either parse failure or a cert missing its signature — never a crash.
  const auto parsed = Certificate::ParseDer(der);
  if (parsed.has_value()) {
    EXPECT_NE(*parsed, cert);
  }
}

TEST(CertificateTest, FingerprintIdentifiesCertificate) {
  const Certificate a = MakeLeaf("a.example.com");
  const Certificate b = MakeLeaf("b.example.com");
  EXPECT_EQ(a.FingerprintSha256(), a.FingerprintSha256());
  EXPECT_NE(a.FingerprintSha256(), b.FingerprintSha256());
}

TEST(CertificateTest, SpkiDigestTracksKeyNotName) {
  // Two certs over the same key share SPKI digests.
  const crypto::KeyPair key = crypto::KeyPair::FromLabel("shared");
  const CertificateIssuer ca = CertificateIssuer::SelfSignedRoot(
      "ca", DistinguishedName{"Test CA", "T", "US"}, -util::kMillisPerYear,
      util::kMillisPerYear * 10);
  IssueSpec s1;
  s1.subject.set_common_name("one.example.com");
  IssueSpec s2;
  s2.subject.set_common_name("two.example.com");
  const Certificate c1 = ca.IssueForKey(s1, key);
  const Certificate c2 = ca.IssueForKey(s2, key);
  EXPECT_EQ(c1.SpkiSha256(), c2.SpkiSha256());
  EXPECT_NE(c1.FingerprintSha256(), c2.FingerprintSha256());
}

TEST(CertificateTest, ValidityHelpers) {
  const Certificate cert = MakeLeaf("v.example.com");
  EXPECT_TRUE(cert.InValidityWindow(util::kMillisPerDay));
  EXPECT_FALSE(cert.InValidityWindow(-1));
  EXPECT_FALSE(cert.InValidityWindow(2 * util::kMillisPerYear));
  EXPECT_EQ(cert.ValidityDays(), 365);
}

TEST(HostnameMatchTest, ExactMatch) {
  EXPECT_TRUE(HostnameMatchesPattern("api.example.com", "api.example.com"));
  EXPECT_FALSE(HostnameMatchesPattern("api.example.com", "www.example.com"));
}

TEST(HostnameMatchTest, WildcardMatchesSingleLabel) {
  EXPECT_TRUE(HostnameMatchesPattern("api.example.com", "*.example.com"));
  EXPECT_FALSE(HostnameMatchesPattern("a.b.example.com", "*.example.com"));
  EXPECT_FALSE(HostnameMatchesPattern("example.com", "*.example.com"));
}

TEST(HostnameMatchTest, EmptyInputsNeverMatch) {
  EXPECT_FALSE(HostnameMatchesPattern("", "*.example.com"));
  EXPECT_FALSE(HostnameMatchesPattern("x.example.com", ""));
}

TEST(CertificateTest, MatchesHostnameViaSan) {
  const Certificate cert = MakeLeaf("api.example.com");
  EXPECT_TRUE(cert.MatchesHostname("api.example.com"));
  EXPECT_TRUE(cert.MatchesHostname("alt.api.example.com"));
  EXPECT_FALSE(cert.MatchesHostname("evil.com"));
}

TEST(CertificateTest, FallsBackToCommonNameWithoutSans) {
  IssueSpec spec;
  spec.subject.set_common_name("cn-only.example.com");
  const Certificate cert = CertificateIssuer::SelfSignedLeaf("cn-only", spec);
  EXPECT_TRUE(cert.MatchesHostname("cn-only.example.com"));
  EXPECT_FALSE(cert.MatchesHostname("other.example.com"));
}

TEST(DistinguishedNameTest, RoundTrips) {
  DistinguishedName dn{"api.example.com", "Example Corp", "US"};
  EXPECT_EQ(DistinguishedName::Parse(dn.ToString()), dn);
  EXPECT_EQ(dn.ToString(), "CN=api.example.com,O=Example Corp,C=US");
}

TEST(DistinguishedNameTest, ParsesPartialNames) {
  const DistinguishedName dn = DistinguishedName::Parse("CN=only-cn");
  EXPECT_EQ(dn.common_name(), "only-cn");
  EXPECT_TRUE(dn.organization().empty());
}

}  // namespace
}  // namespace pinscope::x509

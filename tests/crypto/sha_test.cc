#include <gtest/gtest.h>

#include <set>
#include <string>

#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/hex.h"

namespace pinscope::crypto {
namespace {

std::string HexOf(const util::Bytes& b) { return util::HexEncode(b); }

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(HexOf(ToBytes(Sha256(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(HexOf(ToBytes(Sha256("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HexOf(ToBytes(Sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  const std::string input(1'000'000, 'a');
  EXPECT_EQ(HexOf(ToBytes(Sha256(input))),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, HardwareAndPortablePathsAgree) {
  // On SHA-NI machines Sha256() takes the accelerated path; the portable
  // fallback must produce the same digest for every padding shape. On other
  // machines the two calls take the same path and this degenerates to a
  // self-check.
  for (std::size_t len :
       {0u, 1u, 3u, 31u, 55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u, 1000u, 4096u}) {
    const std::string input(len, static_cast<char>('a' + len % 26));
    EXPECT_EQ(HexOf(ToBytes(Sha256(input))),
              HexOf(ToBytes(internal::Sha256Portable(input))))
        << "len=" << len << " hw=" << internal::Sha256UsesHardware();
  }
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges must all differ.
  std::set<std::string> digests;
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    digests.insert(HexOf(ToBytes(Sha256(std::string(len, 'x')))));
  }
  EXPECT_EQ(digests.size(), 10u);
}

TEST(Sha1Test, Fips180Vectors) {
  EXPECT_EQ(HexOf(ToBytes(Sha1(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(HexOf(ToBytes(Sha1("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(HexOf(ToBytes(Sha1(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  const std::string input(1'000'000, 'a');
  EXPECT_EQ(HexOf(ToBytes(Sha1(input))),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(ShaTest, ByteAndStringOverloadsAgree) {
  const std::string s = "overload parity";
  EXPECT_EQ(Sha256(s), Sha256(util::ToBytes(s)));
  EXPECT_EQ(Sha1(s), Sha1(util::ToBytes(s)));
}

// Property: digests are length-sensitive prefixes aside (no trivial
// collisions across incremental inputs).
class ShaIncrement : public ::testing::TestWithParam<int> {};

TEST_P(ShaIncrement, NeighboringInputsDiffer) {
  const std::string base(static_cast<std::size_t>(GetParam()), 'q');
  EXPECT_NE(Sha256(base), Sha256(base + "q"));
  EXPECT_NE(Sha1(base), Sha1(base + "q"));
}

INSTANTIATE_TEST_SUITE_P(Lengths, ShaIncrement,
                         ::testing::Values(0, 1, 31, 55, 56, 63, 64, 100, 127));

}  // namespace
}  // namespace pinscope::crypto

#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace pinscope::crypto {
namespace {

std::string HexOf(const Sha256Digest& d) {
  return util::HexEncode(util::Bytes(d.begin(), d.end()));
}

// RFC 4231 test vectors.
TEST(HmacTest, Rfc4231Case1) {
  const util::Bytes key(20, 0x0b);
  EXPECT_EQ(HexOf(HmacSha256(key, util::ToBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HexOf(HmacSha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const util::Bytes key(20, 0xaa);
  const util::Bytes msg(50, 0xdd);
  EXPECT_EQ(HexOf(HmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const util::Bytes key(131, 0xaa);
  EXPECT_EQ(
      HexOf(HmacSha256(key, util::ToBytes("Test Using Larger Than Block-Size "
                                          "Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, KeySensitivity) {
  EXPECT_NE(HmacSha256("key-a", "msg"), HmacSha256("key-b", "msg"));
  EXPECT_NE(HmacSha256("key", "msg-a"), HmacSha256("key", "msg-b"));
}

}  // namespace
}  // namespace pinscope::crypto

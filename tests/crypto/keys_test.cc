#include "crypto/keys.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/strings.h"

namespace pinscope::crypto {
namespace {

TEST(KeysTest, GenerateProducesDistinctKeys) {
  util::Rng rng(1);
  const KeyPair a = KeyPair::Generate(rng);
  const KeyPair b = KeyPair::Generate(rng);
  EXPECT_NE(a, b);
  EXPECT_NE(a.SubjectPublicKeyInfo(), b.SubjectPublicKeyInfo());
}

TEST(KeysTest, FromLabelIsDeterministic) {
  const KeyPair a = KeyPair::FromLabel("ca.root.1");
  const KeyPair b = KeyPair::FromLabel("ca.root.1");
  const KeyPair c = KeyPair::FromLabel("ca.root.2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(KeysTest, SpkiEncodesAlgorithm) {
  const KeyPair rsa = KeyPair::FromLabel("k", KeyAlgorithm::kRsa2048);
  const KeyPair ec = KeyPair::FromLabel("k", KeyAlgorithm::kEcdsaP256);
  EXPECT_TRUE(util::Contains(util::ToString(rsa.SubjectPublicKeyInfo()),
                             "rsaEncryption-2048"));
  EXPECT_TRUE(util::Contains(util::ToString(ec.SubjectPublicKeyInfo()),
                             "ecdsa-p256"));
  EXPECT_NE(rsa.SubjectPublicKeyInfo(), ec.SubjectPublicKeyInfo());
}

TEST(KeysTest, SignVerifyRoundTrip) {
  const KeyPair key = KeyPair::FromLabel("signer");
  const util::Bytes msg = util::ToBytes("to be signed");
  const util::Bytes sig = key.Sign(msg);
  EXPECT_TRUE(key.Verify(msg, sig));
}

TEST(KeysTest, VerifyRejectsTamperedMessage) {
  const KeyPair key = KeyPair::FromLabel("signer");
  const util::Bytes sig = key.Sign(util::ToBytes("message"));
  EXPECT_FALSE(key.Verify(util::ToBytes("messagE"), sig));
}

TEST(KeysTest, VerifyRejectsWrongKey) {
  const KeyPair a = KeyPair::FromLabel("a");
  const KeyPair b = KeyPair::FromLabel("b");
  const util::Bytes msg = util::ToBytes("message");
  EXPECT_FALSE(b.Verify(msg, a.Sign(msg)));
}

TEST(KeysTest, SpkiDigestsAreStable) {
  const KeyPair key = KeyPair::FromLabel("pin-me");
  EXPECT_EQ(key.SpkiSha256(), KeyPair::FromLabel("pin-me").SpkiSha256());
  EXPECT_EQ(key.SpkiSha1(), KeyPair::FromLabel("pin-me").SpkiSha1());
}

}  // namespace
}  // namespace pinscope::crypto

#include "tls/record.h"

#include <gtest/gtest.h>

namespace pinscope::tls {
namespace {

TEST(RecordTest, ContentTypeNames) {
  EXPECT_EQ(ContentTypeName(ContentType::kHandshake), "handshake");
  EXPECT_EQ(ContentTypeName(ContentType::kAlert), "alert");
  EXPECT_EQ(ContentTypeName(ContentType::kApplicationData), "application_data");
  EXPECT_EQ(ContentTypeName(ContentType::kChangeCipherSpec), "change_cipher_spec");
}

TEST(RecordTest, WireValuesMatchRfc) {
  EXPECT_EQ(static_cast<int>(ContentType::kChangeCipherSpec), 20);
  EXPECT_EQ(static_cast<int>(ContentType::kAlert), 21);
  EXPECT_EQ(static_cast<int>(ContentType::kHandshake), 22);
  EXPECT_EQ(static_cast<int>(ContentType::kApplicationData), 23);
}

TEST(RecordTest, CountWireTypeFiltersDirectionAndType) {
  std::vector<Record> records = {
      {Direction::kClientToServer, ContentType::kApplicationData,
       ContentType::kApplicationData, 100, {}, 0},
      {Direction::kServerToClient, ContentType::kApplicationData,
       ContentType::kApplicationData, 100, {}, 1},
      {Direction::kClientToServer, ContentType::kHandshake,
       ContentType::kHandshake, 100, {}, 2},
  };
  EXPECT_EQ(CountWireType(records, Direction::kClientToServer,
                          ContentType::kApplicationData),
            1u);
  EXPECT_EQ(CountWireType(records, Direction::kServerToClient,
                          ContentType::kApplicationData),
            1u);
  EXPECT_EQ(CountWireType(records, Direction::kClientToServer,
                          ContentType::kAlert),
            0u);
  EXPECT_EQ(CountWireType({}, Direction::kClientToServer,
                          ContentType::kAlert),
            0u);
}

TEST(RecordTest, EncryptedAlertLengthConstant) {
  // 2 alert bytes + 1 content-type byte + 16-byte tag + 5-byte header.
  EXPECT_EQ(kEncryptedAlertWireLength, 24u);
}

}  // namespace
}  // namespace pinscope::tls

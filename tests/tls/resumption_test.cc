// Session resumption and version-floor negotiation.
#include <gtest/gtest.h>

#include "dynamicanalysis/detector.h"
#include "net/flow.h"
#include "tls/handshake.h"
#include "util/rng.h"
#include "x509/root_store.h"

namespace pinscope::tls {
namespace {

struct ResumeWorld {
  ResumeWorld() : store(x509::PublicCaCatalog::Instance().MozillaStore()) {
    const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.securewire");
    util::Rng rng(41);
    x509::IssueSpec spec;
    spec.subject.set_common_name("resume.example.com");
    spec.san_dns = {"resume.example.com"};
    spec.not_before = -util::kMillisPerDay;
    spec.not_after = util::kMillisPerYear;
    server.hostname = "resume.example.com";
    server.chain = {ca.Issue(spec, rng), ca.certificate()};
    client.root_store = &store;
    payload.plaintext = "POST /sync data=1";
  }
  ServerEndpoint server;
  x509::RootStore store;
  ClientTlsConfig client;
  AppPayload payload;
};

SessionTicket GetTicket(ResumeWorld& w, util::Rng& rng) {
  const auto outcome = SimulateDirectConnection(w.client, w.server, w.payload, 0, rng);
  EXPECT_TRUE(outcome.ticket.has_value());
  return *outcome.ticket;
}

TEST(ResumptionTest, FullHandshakeIssuesTicket) {
  ResumeWorld w;
  util::Rng rng(1);
  const auto outcome = SimulateDirectConnection(w.client, w.server, w.payload, 0, rng);
  ASSERT_TRUE(outcome.ticket.has_value());
  EXPECT_EQ(outcome.ticket->hostname, "resume.example.com");
  EXPECT_EQ(outcome.ticket->chain_at_issue.size(), w.server.chain.size());
  EXPECT_FALSE(outcome.resumed);
}

TEST(ResumptionTest, NoTicketWhenServerDisablesThem) {
  ResumeWorld w;
  w.server.issues_session_tickets = false;
  util::Rng rng(2);
  const auto outcome = SimulateDirectConnection(w.client, w.server, w.payload, 0, rng);
  EXPECT_FALSE(outcome.ticket.has_value());
}

TEST(ResumptionTest, ResumedHandshakeSkipsCertificateFlight) {
  ResumeWorld w;
  util::Rng rng(3);
  const SessionTicket ticket = GetTicket(w, rng);
  const auto resumed =
      SimulateResumedConnection(w.client, w.server, ticket, w.payload, 0, rng);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_TRUE(resumed.handshake_complete);
  EXPECT_TRUE(resumed.application_data_sent);
  // The resumed flight is much shorter — no certificate chain on the wire.
  const auto full = SimulateDirectConnection(w.client, w.server, w.payload, 0, rng);
  std::uint32_t resumed_bytes = 0, full_bytes = 0;
  for (const Record& r : resumed.records) resumed_bytes += r.wire_length;
  for (const Record& r : full.records) full_bytes += r.wire_length;
  EXPECT_LT(resumed_bytes, full_bytes / 2);
}

TEST(ResumptionTest, RevalidatingStackStillEnforcesPins) {
  ResumeWorld w;
  util::Rng rng(4);
  const SessionTicket ticket = GetTicket(w, rng);
  // The app updates its pins to something the cached chain does not satisfy.
  const auto& other = x509::PublicCaCatalog::Instance().ByLabel("ca.orionsign");
  w.client.pins.AddRule(
      {"resume.example.com", false,
       {Pin::ForCertificate(other.certificate(), PinForm::kSpkiSha256)}});
  const auto resumed =
      SimulateResumedConnection(w.client, w.server, ticket, w.payload, 0, rng);
  EXPECT_EQ(resumed.failure, FailureReason::kPinMismatch);
  EXPECT_FALSE(resumed.application_data_sent);
}

TEST(ResumptionTest, NonRevalidatingStackBypassesPins) {
  // The resumption pin-bypass class: a stack that only pins on full
  // handshakes silently trusts whatever session it resumes.
  ResumeWorld w;
  util::Rng rng(5);
  const SessionTicket ticket = GetTicket(w, rng);
  const auto& other = x509::PublicCaCatalog::Instance().ByLabel("ca.orionsign");
  w.client.pins.AddRule(
      {"resume.example.com", false,
       {Pin::ForCertificate(other.certificate(), PinForm::kSpkiSha256)}});
  w.client.revalidates_on_resumption = false;
  const auto resumed =
      SimulateResumedConnection(w.client, w.server, ticket, w.payload, 0, rng);
  EXPECT_TRUE(resumed.handshake_complete);
  EXPECT_TRUE(resumed.application_data_sent);
}

TEST(ResumptionTest, ExpiredCachedChainRejectedOnRevalidation) {
  ResumeWorld w;
  util::Rng rng(6);
  const SessionTicket ticket = GetTicket(w, rng);
  const auto resumed = SimulateResumedConnection(
      w.client, w.server, ticket, w.payload, 3 * util::kMillisPerYear, rng);
  EXPECT_EQ(resumed.failure, FailureReason::kCertificateInvalid);
}

TEST(ResumptionTest, ResumedUsedConnectionStillClassifiesAsUsed) {
  ResumeWorld w;
  util::Rng rng(7);
  const SessionTicket ticket = GetTicket(w, rng);
  const auto resumed =
      SimulateResumedConnection(w.client, w.server, ticket, w.payload, 0, rng);
  const net::Flow flow = net::FlowFromOutcome("resume.example.com", resumed, 0,
                                              net::FlowOrigin::kApp, false);
  EXPECT_TRUE(dynamicanalysis::IsUsedConnection(flow));
}

TEST(ResumptionTest, TicketHostnameMismatchThrows) {
  ResumeWorld w;
  util::Rng rng(8);
  SessionTicket ticket = GetTicket(w, rng);
  ticket.hostname = "other.example.com";
  EXPECT_THROW((void)SimulateResumedConnection(w.client, w.server, ticket,
                                               w.payload, 0, rng),
               util::Error);
}

TEST(VersionFloorTest, IncompatibleRangesFailCleanly) {
  ResumeWorld w;
  w.client.min_version = TlsVersion::kTls13;
  w.server.max_version = TlsVersion::kTls12;
  util::Rng rng(9);
  const auto outcome = SimulateDirectConnection(w.client, w.server, w.payload, 0, rng);
  EXPECT_EQ(outcome.failure, FailureReason::kProtocolVersion);
  EXPECT_FALSE(outcome.handshake_complete);
}

TEST(VersionFloorTest, ServerFloorRespected) {
  ResumeWorld w;
  w.server.min_version = TlsVersion::kTls12;
  w.client.max_version = TlsVersion::kTls11;
  util::Rng rng(10);
  const auto outcome = SimulateDirectConnection(w.client, w.server, w.payload, 0, rng);
  EXPECT_EQ(outcome.failure, FailureReason::kProtocolVersion);
}

TEST(VersionFloorTest, OverlapNegotiatesHighestCommon) {
  ResumeWorld w;
  w.client.min_version = TlsVersion::kTls11;
  w.client.max_version = TlsVersion::kTls12;
  util::Rng rng(11);
  const auto outcome = SimulateDirectConnection(w.client, w.server, w.payload, 0, rng);
  EXPECT_TRUE(outcome.handshake_complete);
  EXPECT_EQ(outcome.version, TlsVersion::kTls12);
}

}  // namespace
}  // namespace pinscope::tls

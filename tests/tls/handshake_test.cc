#include "tls/handshake.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "x509/root_store.h"

namespace pinscope::tls {
namespace {

// Server for api.hs.com chained under a catalog CA; client trusts that CA.
struct HsWorld {
  HsWorld() {
    const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.globaltrust");
    util::Rng rng(11);
    x509::IssueSpec spec;
    spec.subject.set_common_name("api.hs.com");
    spec.san_dns = {"api.hs.com"};
    spec.not_before = -30 * util::kMillisPerDay;
    spec.not_after = util::kMillisPerYear;
    server.hostname = "api.hs.com";
    server.chain = {ca.Issue(spec, rng), ca.certificate()};
    store = x509::PublicCaCatalog::Instance().MozillaStore();
    client.root_store = &store;
  }
  ServerEndpoint server;
  x509::RootStore store;
  ClientTlsConfig client;
};

AppPayload SomePayload() {
  AppPayload p;
  p.plaintext = "POST /data HTTP/1.1\r\nbody: hello";
  return p;
}

TEST(HandshakeTest, SuccessfulTls13ConnectionCarriesData) {
  HsWorld w;
  util::Rng rng(1);
  const auto out = SimulateDirectConnection(w.client, w.server, SomePayload(), 0, rng);
  EXPECT_TRUE(out.handshake_complete);
  EXPECT_TRUE(out.application_data_sent);
  EXPECT_EQ(out.version, TlsVersion::kTls13);
  EXPECT_EQ(out.failure, FailureReason::kNone);
  EXPECT_EQ(out.closure, Closure::kCleanFin);
  EXPECT_EQ(out.plaintext_sent, SomePayload().plaintext);
}

TEST(HandshakeTest, Tls13DisguisesEncryptedRecords) {
  HsWorld w;
  util::Rng rng(2);
  const auto out = SimulateDirectConnection(w.client, w.server, SomePayload(), 0, rng);
  // Every record after ServerHello is wire-typed application data even when
  // its actual type is handshake or alert.
  bool saw_disguised = false;
  for (const Record& r : out.records) {
    if (r.wire_type == ContentType::kApplicationData &&
        r.actual_type != ContentType::kApplicationData) {
      saw_disguised = true;
    }
  }
  EXPECT_TRUE(saw_disguised);
}

TEST(HandshakeTest, Tls12ExposesTrueContentTypes) {
  HsWorld w;
  w.client.max_version = TlsVersion::kTls12;
  util::Rng rng(3);
  const auto out = SimulateDirectConnection(w.client, w.server, SomePayload(), 0, rng);
  EXPECT_EQ(out.version, TlsVersion::kTls12);
  for (const Record& r : out.records) {
    EXPECT_EQ(r.wire_type, r.actual_type);
  }
}

TEST(HandshakeTest, PinMismatchAbortsWithDisguisedAlert) {
  HsWorld w;
  // Pin a certificate that is not in the served chain.
  const auto& other = x509::PublicCaCatalog::Instance().ByLabel("ca.digisign");
  w.client.pins.AddRule({"api.hs.com", false,
                         {Pin::ForCertificate(other.certificate(),
                                              PinForm::kSpkiSha256)}});
  util::Rng rng(4);
  const auto out = SimulateDirectConnection(w.client, w.server, SomePayload(), 0, rng);
  EXPECT_FALSE(out.handshake_complete);
  EXPECT_FALSE(out.application_data_sent);
  EXPECT_EQ(out.failure, FailureReason::kPinMismatch);
  EXPECT_EQ(out.closure, Closure::kClientReset);
  // TLS 1.3: the client's abort is a disguised alert of characteristic size.
  const Record& last = out.records.back();
  EXPECT_EQ(last.direction, Direction::kClientToServer);
  EXPECT_EQ(last.wire_type, ContentType::kApplicationData);
  EXPECT_EQ(last.actual_type, ContentType::kAlert);
  EXPECT_EQ(last.wire_length, kEncryptedAlertWireLength);
}

TEST(HandshakeTest, MatchingPinSucceeds) {
  HsWorld w;
  w.client.pins.AddRule({"api.hs.com", false,
                         {Pin::ForCertificate(w.server.chain.back(),
                                              PinForm::kSpkiSha256)}});
  util::Rng rng(5);
  const auto out = SimulateDirectConnection(w.client, w.server, SomePayload(), 0, rng);
  EXPECT_TRUE(out.handshake_complete);
  EXPECT_TRUE(out.pin_pass);
}

TEST(HandshakeTest, UntrustedRootAborts) {
  HsWorld w;
  x509::RootStore empty("empty", {});
  w.client.root_store = &empty;
  util::Rng rng(6);
  const auto out = SimulateDirectConnection(w.client, w.server, SomePayload(), 0, rng);
  EXPECT_EQ(out.failure, FailureReason::kCertificateInvalid);
  EXPECT_EQ(out.validation.status, x509::ValidationStatus::kUntrustedRoot);
  EXPECT_EQ(out.closure, Closure::kClientReset);
}

TEST(HandshakeTest, NoCommonCipherFailsCleanly) {
  HsWorld w;
  w.client.offered_ciphers = {CipherSuiteId::kRsaRc4128Md5};
  w.server.ciphers = {CipherSuiteId::kTlsAes128GcmSha256};
  util::Rng rng(7);
  const auto out = SimulateDirectConnection(w.client, w.server, SomePayload(), 0, rng);
  EXPECT_EQ(out.failure, FailureReason::kNoCommonCipher);
  EXPECT_FALSE(out.negotiated_cipher.has_value());
  EXPECT_FALSE(out.handshake_complete);
}

TEST(HandshakeTest, VersionNegotiatesDownToServerMax) {
  HsWorld w;
  w.server.max_version = TlsVersion::kTls12;
  util::Rng rng(8);
  const auto out = SimulateDirectConnection(w.client, w.server, SomePayload(), 0, rng);
  EXPECT_EQ(out.version, TlsVersion::kTls12);
  EXPECT_TRUE(out.handshake_complete);
}

TEST(HandshakeTest, EmptyPayloadLeavesConnectionUnused) {
  HsWorld w;
  util::Rng rng(9);
  const auto out = SimulateDirectConnection(w.client, w.server, AppPayload{}, 0, rng);
  EXPECT_TRUE(out.handshake_complete);
  EXPECT_FALSE(out.application_data_sent);
  EXPECT_TRUE(out.plaintext_sent.empty());
}

TEST(HandshakeTest, OfferedCiphersAreRecorded) {
  HsWorld w;
  w.client.offered_ciphers = LegacyCipherOffer();
  util::Rng rng(10);
  const auto out = SimulateDirectConnection(w.client, w.server, SomePayload(), 0, rng);
  EXPECT_EQ(out.offered_ciphers, LegacyCipherOffer());
}

TEST(HandshakeTest, ThrowsWithoutRootStore) {
  HsWorld w;
  ClientTlsConfig bare;
  util::Rng rng(11);
  EXPECT_THROW(
      (void)SimulateDirectConnection(bare, w.server, SomePayload(), 0, rng),
      util::Error);
}

TEST(HandshakeTest, ExpiredChainRejectedUnlessDisabled) {
  HsWorld w;
  util::Rng rng(12);
  const util::SimTime later = 3 * util::kMillisPerYear;
  auto out = SimulateDirectConnection(w.client, w.server, SomePayload(), later, rng);
  EXPECT_EQ(out.failure, FailureReason::kCertificateInvalid);

  w.client.validation.check_expiry = false;
  out = SimulateDirectConnection(w.client, w.server, SomePayload(), later, rng);
  EXPECT_TRUE(out.handshake_complete);
}

}  // namespace
}  // namespace pinscope::tls

#include "tls/hpkp.h"

#include <gtest/gtest.h>

#include "util/base64.h"

namespace pinscope::tls {
namespace {

std::string B64Pin(std::uint8_t fill) {
  return util::Base64Encode(util::Bytes(32, fill));
}

std::string TwoPinHeader() {
  return "pin-sha256=\"" + B64Pin(0x11) + "\"; pin-sha256=\"" + B64Pin(0x22) +
         "\"; max-age=5184000; includeSubDomains; "
         "report-uri=\"https://example.net/pkp\"";
}

TEST(HpkpTest, ParsesFullHeader) {
  const auto header = ParseHpkpHeader(TwoPinHeader());
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->pins.size(), 2u);
  EXPECT_EQ(header->max_age_seconds, 5184000);
  EXPECT_TRUE(header->include_subdomains);
  EXPECT_EQ(header->report_uri, "https://example.net/pkp");
  EXPECT_TRUE(header->Enforceable());
}

TEST(HpkpTest, SinglePinIsNotEnforceable) {
  // RFC 7469 requires a backup pin.
  const auto header =
      ParseHpkpHeader("pin-sha256=\"" + B64Pin(0x33) + "\"; max-age=100");
  ASSERT_TRUE(header.has_value());
  EXPECT_FALSE(header->Enforceable());
}

TEST(HpkpTest, MissingMaxAgeIsNotEnforceableUnlessReportOnly) {
  const std::string no_age = "pin-sha256=\"" + B64Pin(1) + "\"; pin-sha256=\"" +
                             B64Pin(2) + "\"";
  EXPECT_FALSE(ParseHpkpHeader(no_age)->Enforceable());
  EXPECT_TRUE(ParseHpkpHeader(no_age, /*report_only=*/true)->Enforceable());
}

TEST(HpkpTest, NoPinsYieldsNullopt) {
  EXPECT_FALSE(ParseHpkpHeader("max-age=100; includeSubDomains").has_value());
  EXPECT_FALSE(ParseHpkpHeader("").has_value());
}

TEST(HpkpTest, MalformedPinBodiesAreSkipped) {
  const auto header = ParseHpkpHeader(
      "pin-sha256=\"!!!\"; pin-sha256=\"" + B64Pin(0x44) + "\"; max-age=1");
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->pins.size(), 1u);
}

TEST(HpkpTest, DirectiveNamesAreCaseInsensitive) {
  const auto header = ParseHpkpHeader("PIN-SHA256=\"" + B64Pin(5) +
                                      "\"; Pin-Sha256=\"" + B64Pin(6) +
                                      "\"; MAX-AGE=9; INCLUDESUBDOMAINS");
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->pins.size(), 2u);
  EXPECT_EQ(header->max_age_seconds, 9);
  EXPECT_TRUE(header->include_subdomains);
}

TEST(HpkpTest, ToRuleBuildsUsablePolicy) {
  const auto header = ParseHpkpHeader(TwoPinHeader());
  PinPolicy policy;
  policy.AddRule(header->ToRule("example.com"));
  EXPECT_TRUE(policy.IsPinned("example.com"));
  EXPECT_TRUE(policy.IsPinned("api.example.com"));  // includeSubDomains
  EXPECT_FALSE(policy.IsPinned("other.com"));
}

TEST(HpkpTest, UnknownDirectivesIgnored) {
  const auto header = ParseHpkpHeader("pin-sha256=\"" + B64Pin(7) +
                                      "\"; pin-sha256=\"" + B64Pin(8) +
                                      "\"; max-age=1; strict-thing=yes");
  ASSERT_TRUE(header.has_value());
  EXPECT_TRUE(header->Enforceable());
}

}  // namespace
}  // namespace pinscope::tls

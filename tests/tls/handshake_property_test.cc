// Property suite: across the full configuration grid — TLS version × pin
// target × payload × interception — the passive detector's wire-level
// classification must agree with the simulator's ground truth. This is the
// invariant the paper's whole dynamic methodology rests on.
#include <gtest/gtest.h>

#include <tuple>

#include "dynamicanalysis/detector.h"
#include "net/flow.h"
#include "net/mitm_proxy.h"
#include "tls/handshake.h"
#include "util/rng.h"
#include "x509/root_store.h"

namespace pinscope::tls {
namespace {

enum class PinMode { kNone, kRoot, kIntermediate, kLeaf, kMismatched };

const char* PinModeName(PinMode m) {
  switch (m) {
    case PinMode::kNone: return "none";
    case PinMode::kRoot: return "root";
    case PinMode::kIntermediate: return "intermediate";
    case PinMode::kLeaf: return "leaf";
    case PinMode::kMismatched: return "mismatched";
  }
  return "?";
}

using GridParam = std::tuple<TlsVersion, PinMode, bool /*payload*/,
                             bool /*intercepted*/, int /*seed*/>;

class HandshakeDetectorGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(HandshakeDetectorGrid, WireClassificationMatchesGroundTruth) {
  const auto [version, pin_mode, with_payload, intercepted, seed] = GetParam();

  // World: leaf ← intermediate ← catalog root.
  const auto& root = x509::PublicCaCatalog::Instance().ByLabel("ca.trustanchor");
  x509::IssueSpec inter_spec;
  inter_spec.subject.set_common_name("Grid Intermediate");
  inter_spec.not_before = -util::kMillisPerYear;
  inter_spec.not_after = 5 * util::kMillisPerYear;
  inter_spec.is_ca = true;
  const x509::CertificateIssuer inter =
      root.CreateIntermediate(inter_spec, "grid-inter");
  util::Rng rng(static_cast<std::uint64_t>(seed) + 1);
  x509::IssueSpec leaf_spec;
  leaf_spec.subject.set_common_name("grid.example.com");
  leaf_spec.san_dns = {"grid.example.com"};
  leaf_spec.not_before = -util::kMillisPerDay;
  leaf_spec.not_after = util::kMillisPerYear;

  ServerEndpoint server;
  server.hostname = "grid.example.com";
  server.chain = {inter.Issue(leaf_spec, rng), inter.certificate(),
                  root.certificate()};

  net::MitmProxy proxy;
  x509::RootStore store = x509::PublicCaCatalog::Instance().MozillaStore();
  store.AddRoot(proxy.CaCertificate());

  ClientTlsConfig client;
  client.root_store = &store;
  client.max_version = version;
  switch (pin_mode) {
    case PinMode::kNone:
      break;
    case PinMode::kRoot:
      client.pins.AddRule({"grid.example.com", false,
                           {Pin::ForCertificate(server.chain[2], PinForm::kSpkiSha256)}});
      break;
    case PinMode::kIntermediate:
      client.pins.AddRule({"grid.example.com", false,
                           {Pin::ForCertificate(server.chain[1], PinForm::kSpkiSha256)}});
      break;
    case PinMode::kLeaf:
      client.pins.AddRule({"grid.example.com", false,
                           {Pin::ForCertificate(server.chain[0], PinForm::kSpkiSha256)}});
      break;
    case PinMode::kMismatched: {
      const auto& other = x509::PublicCaCatalog::Instance().ByLabel("ca.meridian");
      client.pins.AddRule(
          {"grid.example.com", false,
           {Pin::ForCertificate(other.certificate(), PinForm::kSpkiSha256)}});
      break;
    }
  }

  AppPayload payload;
  if (with_payload) payload.plaintext = "POST /grid data=0123456789";

  ConnectionOutcome outcome;
  if (intercepted) {
    outcome = proxy.Intercept(client, server, payload, 0, rng).outcome;
  } else {
    outcome = SimulateDirectConnection(client, server, payload, 0, rng);
  }

  // Ground truth expectations.
  const bool pins_defeat_mitm = pin_mode != PinMode::kNone;  // proxy chain never
                                                             // satisfies any pin
  const bool expect_complete =
      pin_mode == PinMode::kMismatched ? false : (!intercepted || !pins_defeat_mitm);
  EXPECT_EQ(outcome.handshake_complete, expect_complete)
      << PinModeName(pin_mode) << " intercepted=" << intercepted;
  EXPECT_EQ(outcome.application_data_sent, expect_complete && with_payload);

  // The central property: passive wire classification == ground truth.
  const net::Flow flow = net::FlowFromOutcome("grid.example.com", outcome, 0,
                                              net::FlowOrigin::kApp, false);
  EXPECT_EQ(dynamicanalysis::IsUsedConnection(flow), outcome.application_data_sent)
      << TlsVersionName(version) << " pin=" << PinModeName(pin_mode)
      << " payload=" << with_payload << " mitm=" << intercepted;

  // A connection that failed on certificates/pins must classify as failed.
  if (!outcome.handshake_complete &&
      outcome.failure != FailureReason::kNoCommonCipher) {
    EXPECT_TRUE(dynamicanalysis::IsFailedConnection(flow));
  }
  // A used connection must never classify as failed.
  if (outcome.application_data_sent) {
    EXPECT_FALSE(dynamicanalysis::IsFailedConnection(flow));
  }
}

std::string GridName(const ::testing::TestParamInfo<GridParam>& info) {
  const auto [version, pin, payload, mitm, seed] = info.param;
  std::string name = version == TlsVersion::kTls13 ? "Tls13" : "Tls12";
  name += std::string("_pin") + PinModeName(pin);
  name += payload ? "_data" : "_idle";
  name += mitm ? "_mitm" : "_direct";
  name += "_s" + std::to_string(seed);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HandshakeDetectorGrid,
    ::testing::Combine(
        ::testing::Values(TlsVersion::kTls12, TlsVersion::kTls13),
        ::testing::Values(PinMode::kNone, PinMode::kRoot, PinMode::kIntermediate,
                          PinMode::kLeaf, PinMode::kMismatched),
        ::testing::Bool(),        // payload
        ::testing::Bool(),        // intercepted
        ::testing::Values(1, 2, 3)),  // record-size jitter seeds
    GridName);

}  // namespace
}  // namespace pinscope::tls

#include "tls/pinning.h"

#include <gtest/gtest.h>

#include "util/base64.h"
#include "util/rng.h"
#include "x509/issuer.h"

namespace pinscope::tls {
namespace {

struct PinWorld {
  PinWorld()
      : root(x509::CertificateIssuer::SelfSignedRoot(
            "pin-root", x509::DistinguishedName{"Pin Root CA", "", "US"},
            -util::kMillisPerYear, 10 * util::kMillisPerYear)) {
    util::Rng rng(3);
    x509::IssueSpec spec;
    spec.subject.set_common_name("pin.test.com");
    spec.san_dns = {"pin.test.com"};
    leaf = root.Issue(spec, rng);
    chain = {leaf, root.certificate()};
  }
  x509::CertificateIssuer root;
  x509::Certificate leaf;
  x509::CertificateChain chain;
};

class PinFormTest : public ::testing::TestWithParam<PinForm> {};

TEST_P(PinFormTest, PinMatchesItsOwnCertificate) {
  PinWorld w;
  const Pin pin = Pin::ForCertificate(w.leaf, GetParam());
  EXPECT_TRUE(pin.Matches(w.leaf));
  EXPECT_FALSE(pin.Matches(w.root.certificate()));
}

INSTANTIATE_TEST_SUITE_P(AllForms, PinFormTest,
                         ::testing::Values(PinForm::kSpkiSha256,
                                           PinForm::kSpkiSha1,
                                           PinForm::kCertificate,
                                           PinForm::kPublicKey));

TEST(PinTest, SpkiPinSurvivesKeyReusingRenewal) {
  // §5.3.3: renewal that keeps the key must keep SPKI pins valid; a full
  // certificate pin must break.
  PinWorld w;
  const Pin spki = Pin::ForCertificate(w.leaf, PinForm::kSpkiSha256);
  const Pin cert_pin = Pin::ForCertificate(w.leaf, PinForm::kCertificate);
  const Pin key_pin = Pin::ForCertificate(w.leaf, PinForm::kPublicKey);

  // Reissue for the same key with a fresh validity window.
  const crypto::KeyPair key = crypto::KeyPair::FromLabel("renewal-key");
  x509::IssueSpec spec;
  spec.subject.set_common_name("pin.test.com");
  spec.san_dns = {"pin.test.com"};
  const x509::Certificate old_leaf = w.root.IssueForKey(spec, key);
  spec.not_after = 2 * util::kMillisPerYear;
  const x509::Certificate new_leaf = w.root.IssueForKey(spec, key);

  const Pin old_spki = Pin::ForCertificate(old_leaf, PinForm::kSpkiSha256);
  const Pin old_cert = Pin::ForCertificate(old_leaf, PinForm::kCertificate);
  const Pin old_key = Pin::ForCertificate(old_leaf, PinForm::kPublicKey);
  EXPECT_TRUE(old_spki.Matches(new_leaf));
  EXPECT_TRUE(old_key.Matches(new_leaf));
  EXPECT_FALSE(old_cert.Matches(new_leaf));
  (void)spki;
  (void)cert_pin;
  (void)key_pin;
}

TEST(PinTest, PinStringRoundTrips) {
  PinWorld w;
  for (PinForm form : {PinForm::kSpkiSha256, PinForm::kSpkiSha1}) {
    const Pin pin = Pin::ForCertificate(w.leaf, form);
    const auto parsed = Pin::FromPinString(pin.ToPinString());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, pin);
  }
}

TEST(PinTest, FromPinStringRejectsMalformedInput) {
  EXPECT_FALSE(Pin::FromPinString("md5/AAAA").has_value());
  EXPECT_FALSE(Pin::FromPinString("sha256/!!!").has_value());
  EXPECT_FALSE(Pin::FromPinString("sha256/Zm9v").has_value());  // wrong length
  EXPECT_FALSE(Pin::FromPinString("").has_value());
  // sha1 digest length under a sha256 prefix must be rejected.
  const std::string sha1_b64 = util::Base64Encode(util::Bytes(20, 0xab));
  EXPECT_FALSE(Pin::FromPinString("sha256/" + sha1_b64).has_value());
  EXPECT_TRUE(Pin::FromPinString("sha1/" + sha1_b64).has_value());
}

TEST(DomainPinRuleTest, ExactAndWildcardApplication) {
  DomainPinRule rule;
  rule.pattern = "*.example.com";
  EXPECT_TRUE(rule.AppliesTo("api.example.com"));
  EXPECT_FALSE(rule.AppliesTo("deep.api.example.com"));
  EXPECT_FALSE(rule.AppliesTo("example.com"));
}

TEST(DomainPinRuleTest, IncludeSubdomainsCoversSubtree) {
  DomainPinRule rule;
  rule.pattern = "example.com";
  rule.include_subdomains = true;
  EXPECT_TRUE(rule.AppliesTo("example.com"));
  EXPECT_TRUE(rule.AppliesTo("api.example.com"));
  EXPECT_TRUE(rule.AppliesTo("deep.api.example.com"));
  EXPECT_FALSE(rule.AppliesTo("notexample.com"));
}

TEST(PinPolicyTest, UnpinnedHostAlwaysPasses) {
  PinWorld w;
  PinPolicy policy;
  EXPECT_TRUE(policy.Evaluate("anything.com", w.chain));
  EXPECT_FALSE(policy.IsPinned("anything.com"));
}

TEST(PinPolicyTest, MatchingChainPasses) {
  PinWorld w;
  PinPolicy policy;
  policy.AddRule({"pin.test.com", false,
                  {Pin::ForCertificate(w.root.certificate(), PinForm::kSpkiSha256)}});
  EXPECT_TRUE(policy.IsPinned("pin.test.com"));
  EXPECT_TRUE(policy.Evaluate("pin.test.com", w.chain));
}

TEST(PinPolicyTest, AnyChainElementSatisfiesPin) {
  // §2.1: pinned certificates "could be any certificate in the chain".
  PinWorld w;
  for (const x509::Certificate& cert : w.chain) {
    PinPolicy policy;
    policy.AddRule(
        {"pin.test.com", false, {Pin::ForCertificate(cert, PinForm::kSpkiSha256)}});
    EXPECT_TRUE(policy.Evaluate("pin.test.com", w.chain));
  }
}

TEST(PinPolicyTest, MismatchedChainFails) {
  PinWorld w;
  const x509::CertificateIssuer other = x509::CertificateIssuer::SelfSignedRoot(
      "other-root", x509::DistinguishedName{"Other CA", "", "US"},
      -util::kMillisPerYear, util::kMillisPerYear);
  PinPolicy policy;
  policy.AddRule({"pin.test.com", false,
                  {Pin::ForCertificate(other.certificate(), PinForm::kSpkiSha256)}});
  EXPECT_FALSE(policy.Evaluate("pin.test.com", w.chain));
}

TEST(PinPolicyTest, PinsForUnionsAcrossRules) {
  PinWorld w;
  PinPolicy policy;
  policy.AddRule({"pin.test.com", false,
                  {Pin::ForCertificate(w.leaf, PinForm::kSpkiSha256)}});
  policy.AddRule({"pin.test.com", false,
                  {Pin::ForCertificate(w.root.certificate(), PinForm::kSpkiSha256)}});
  EXPECT_EQ(policy.PinsFor("pin.test.com").size(), 2u);
  // Duplicates collapse.
  policy.AddRule({"pin.test.com", false,
                  {Pin::ForCertificate(w.leaf, PinForm::kSpkiSha256)}});
  EXPECT_EQ(policy.PinsFor("pin.test.com").size(), 2u);
}

TEST(PinPolicyTest, EvaluateFailsWhenNoPinMatchesInterceptedChain) {
  // The MITM scenario: policy pins the genuine root; the forged chain chains
  // to a different CA.
  PinWorld w;
  PinPolicy policy;
  policy.AddRule({"pin.test.com", false,
                  {Pin::ForCertificate(w.root.certificate(), PinForm::kSpkiSha256)}});
  const x509::CertificateIssuer proxy = x509::CertificateIssuer::SelfSignedRoot(
      "proxy", x509::DistinguishedName{"mitmproxy", "", "US"},
      -util::kMillisPerYear, util::kMillisPerYear);
  util::Rng rng(5);
  x509::IssueSpec spec;
  spec.subject.set_common_name("pin.test.com");
  spec.san_dns = {"pin.test.com"};
  const x509::CertificateChain forged = {proxy.Issue(spec, rng), proxy.certificate()};
  EXPECT_FALSE(policy.Evaluate("pin.test.com", forged));
}

}  // namespace
}  // namespace pinscope::tls

#include "tls/cipher_suites.h"

#include <gtest/gtest.h>

#include <set>

namespace pinscope::tls {
namespace {

TEST(CipherSuitesTest, RegistryHasUniqueIdsAndNames) {
  std::set<CipherSuiteId> ids;
  std::set<std::string_view> names;
  for (const CipherSuiteInfo& info : CipherSuiteRegistry()) {
    EXPECT_TRUE(ids.insert(info.id).second);
    EXPECT_TRUE(names.insert(info.name).second);
  }
}

TEST(CipherSuitesTest, WeakClassificationMatchesPaperList) {
  // §5.4: DES, 3DES, RC4 and EXPORT suites are "bad".
  EXPECT_TRUE(IsWeakCipher(CipherSuiteId::kRsaDesCbcSha));
  EXPECT_TRUE(IsWeakCipher(CipherSuiteId::kRsa3DesEdeCbcSha));
  EXPECT_TRUE(IsWeakCipher(CipherSuiteId::kEcdheRsa3DesEdeCbcSha));
  EXPECT_TRUE(IsWeakCipher(CipherSuiteId::kRsaRc4128Sha));
  EXPECT_TRUE(IsWeakCipher(CipherSuiteId::kRsaRc4128Md5));
  EXPECT_TRUE(IsWeakCipher(CipherSuiteId::kRsaExportRc440Md5));
  EXPECT_TRUE(IsWeakCipher(CipherSuiteId::kRsaExportDes40CbcSha));

  EXPECT_FALSE(IsWeakCipher(CipherSuiteId::kTlsAes128GcmSha256));
  EXPECT_FALSE(IsWeakCipher(CipherSuiteId::kEcdheRsaAes256GcmSha384));
  EXPECT_FALSE(IsWeakCipher(CipherSuiteId::kRsaAes128CbcSha));
}

TEST(CipherSuitesTest, ModernOfferIsClean) {
  EXPECT_FALSE(AdvertisesWeakCipher(ModernCipherOffer()));
}

TEST(CipherSuitesTest, LegacyOfferAdvertisesWeak) {
  EXPECT_TRUE(AdvertisesWeakCipher(LegacyCipherOffer()));
}

TEST(CipherSuitesTest, Tls13SuitesScopedToTls13) {
  const CipherSuiteInfo& info = CipherSuite(CipherSuiteId::kTlsAes128GcmSha256);
  EXPECT_EQ(info.min_version, TlsVersion::kTls13);
  EXPECT_EQ(info.max_version, TlsVersion::kTls13);
}

TEST(CipherSuitesTest, EmptyOfferIsNotWeak) {
  EXPECT_FALSE(AdvertisesWeakCipher({}));
}

TEST(TlsVersionTest, NamesAndOrdering) {
  EXPECT_EQ(TlsVersionName(TlsVersion::kTls13), "TLSv1.3");
  EXPECT_EQ(TlsVersionName(TlsVersion::kTls10), "TLSv1.0");
  EXPECT_LT(TlsVersion::kTls12, TlsVersion::kTls13);
}

}  // namespace
}  // namespace pinscope::tls

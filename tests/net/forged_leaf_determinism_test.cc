// Regression suite for the forged-leaf purity contract (DESIGN.md §10): the
// DER bytes of the leaf a MitmProxy forges for a hostname depend only on
// (study seed, CA label, hostname) — never on which app asked, in what
// order, from which thread, or whether the forged-leaf cache is shared.
// That contract is what makes a single study-wide cache sound. The suite is
// tagged `dynamic` and runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "net/forged_leaf_cache.h"
#include "net/mitm_proxy.h"

namespace pinscope::net {
namespace {

const x509::Certificate& Leaf(const MitmProxy& proxy,
                              const std::string& hostname) {
  return proxy.ForgedChainFor(hostname)->front();
}

TEST(ForgedLeafDeterminismTest, BytesDependOnlyOnSeedAndHostname) {
  const MitmProxy a("mitmproxy", 42);
  const MitmProxy b("mitmproxy", 42);

  // Independent proxies, same seed: identical forged bytes per hostname.
  EXPECT_EQ(Leaf(a, "api.shared.com").DerBytes(),
            Leaf(b, "api.shared.com").DerBytes());
  EXPECT_EQ(Leaf(a, "cdn.other.net").DerBytes(),
            Leaf(b, "cdn.other.net").DerBytes());

  // Distinct hostnames get distinct leaves.
  EXPECT_NE(Leaf(a, "api.shared.com").DerBytes(),
            Leaf(a, "cdn.other.net").DerBytes());

  // A different seed changes the forged key material.
  const MitmProxy c("mitmproxy", 43);
  EXPECT_NE(Leaf(a, "api.shared.com").DerBytes(),
            Leaf(c, "api.shared.com").DerBytes());
}

TEST(ForgedLeafDeterminismTest, RequestOrderIsIrrelevant) {
  const MitmProxy forward("mitmproxy", 7);
  const MitmProxy backward("mitmproxy", 7);
  const std::vector<std::string> hosts = {"a.example.com", "b.example.com",
                                          "c.example.com", "d.example.com"};
  for (const auto& h : hosts) (void)forward.ForgedChainFor(h);
  for (auto it = hosts.rbegin(); it != hosts.rend(); ++it) {
    (void)backward.ForgedChainFor(*it);
  }
  for (const auto& h : hosts) {
    EXPECT_EQ(Leaf(forward, h).DerBytes(), Leaf(backward, h).DerBytes())
        << h;
  }
}

TEST(ForgedLeafDeterminismTest, SharedCacheMatchesPrivateCaches) {
  // Two proxies sharing one cache (the study-fixture arrangement) must serve
  // the same bytes a cacheless-by-sharing proxy would forge on its own.
  auto shared = std::make_shared<ForgedLeafCache>();
  const MitmProxy first("mitmproxy", 11, shared);
  const MitmProxy second("mitmproxy", 11, shared);
  const MitmProxy solo("mitmproxy", 11);

  const auto chain1 = first.ForgedChainFor("pinned.site.com");
  const auto chain2 = second.ForgedChainFor("pinned.site.com");
  // Same resident entry through the shared cache…
  EXPECT_EQ(chain1.get(), chain2.get());
  // …with the bytes a private-cache proxy derives independently.
  EXPECT_EQ(chain1->front().DerBytes(),
            Leaf(solo, "pinned.site.com").DerBytes());
}

TEST(ForgedLeafDeterminismTest, CallerRngNeverFeedsIssuance) {
  // Intercept jitters the wire trace from the caller's rng; the forged chain
  // it presents must be the rng-independent cached one.
  const MitmProxy proxy("mitmproxy", 5);
  tls::ServerEndpoint server;
  server.hostname = "jitter.test.com";
  server.chain = *proxy.ForgedChainFor("warm.other.com");  // any valid chain

  x509::RootStore store("trusting", {proxy.CaCertificate()});
  tls::ClientTlsConfig cfg;
  cfg.root_store = &store;

  util::Rng rng1(1001);
  util::Rng rng2(2002);
  (void)proxy.Intercept(cfg, server, {}, 0, rng1);
  const auto after_rng1 = proxy.ForgedChainFor("jitter.test.com");
  (void)proxy.Intercept(cfg, server, {}, 0, rng2);

  const MitmProxy fresh("mitmproxy", 5);
  EXPECT_EQ(after_rng1->front().DerBytes(),
            Leaf(fresh, "jitter.test.com").DerBytes());
}

TEST(ForgedLeafDeterminismTest, ConcurrentForgingConvergesToOneChain) {
  auto shared = std::make_shared<ForgedLeafCache>();
  const MitmProxy proxy("mitmproxy", 3, shared);
  const std::vector<std::string> hosts = {"h0.test", "h1.test", "h2.test",
                                          "h3.test", "h4.test"};
  constexpr int kThreads = 8;

  std::vector<std::vector<std::shared_ptr<const x509::CertificateChain>>>
      seen(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Each thread walks the hosts at a different starting offset so
      // insert races actually happen.
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        const auto& host = hosts[(i + static_cast<std::size_t>(t)) % hosts.size()];
        seen[t].push_back(proxy.ForgedChainFor(host));
      }
    });
  }
  for (std::thread& th : workers) th.join();

  // Every thread observed the same resident chain object per hostname.
  const MitmProxy reference("mitmproxy", 3);
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      const auto& host = hosts[(i + static_cast<std::size_t>(t)) % hosts.size()];
      const auto expected = proxy.ForgedChainFor(host);
      EXPECT_EQ(seen[t][i].get(), expected.get());
      EXPECT_EQ(seen[t][i]->front().DerBytes(),
                Leaf(reference, host).DerBytes());
    }
  }

  const ForgedLeafCacheStats stats = proxy.ForgedCacheStats();
  EXPECT_EQ(stats.entries, hosts.size());
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

}  // namespace
}  // namespace pinscope::net

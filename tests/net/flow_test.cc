#include "net/flow.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "x509/root_store.h"

namespace pinscope::net {
namespace {

tls::ConnectionOutcome MakeOutcome(bool with_data) {
  static x509::RootStore store = x509::PublicCaCatalog::Instance().MozillaStore();
  const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.globaltrust");
  util::Rng rng(21);
  x509::IssueSpec spec;
  spec.subject.set_common_name("flow.test.com");
  spec.san_dns = {"flow.test.com"};
  spec.not_before = -util::kMillisPerDay;
  spec.not_after = util::kMillisPerYear;
  tls::ServerEndpoint server;
  server.hostname = "flow.test.com";
  server.chain = {ca.Issue(spec, rng), ca.certificate()};
  tls::ClientTlsConfig client;
  client.root_store = &store;
  tls::AppPayload payload;
  if (with_data) payload.plaintext = "GET / HTTP/1.1";
  return tls::SimulateDirectConnection(client, server, payload, 0, rng);
}

TEST(FlowTest, FlowFromOutcomeCopiesWireMetadata) {
  const auto outcome = MakeOutcome(true);
  const Flow f = FlowFromOutcome("flow.test.com", outcome, 1234,
                                 FlowOrigin::kApp, false);
  EXPECT_EQ(f.sni, "flow.test.com");
  EXPECT_EQ(f.start_ms, 1234);
  EXPECT_EQ(f.records.size(), outcome.records.size());
  EXPECT_EQ(f.version, outcome.version);
  EXPECT_FALSE(f.decrypted_payload.has_value());
}

TEST(FlowTest, DecryptedPayloadOnlyWhenObserverDecrypted) {
  const auto outcome = MakeOutcome(true);
  const Flow visible =
      FlowFromOutcome("flow.test.com", outcome, 0, FlowOrigin::kApp, true);
  ASSERT_TRUE(visible.decrypted_payload.has_value());
  EXPECT_EQ(*visible.decrypted_payload, "GET / HTTP/1.1");
}

TEST(FlowTest, NoPayloadNoDecryptedContentEvenForDecryptingObserver) {
  const auto outcome = MakeOutcome(false);
  const Flow f = FlowFromOutcome("flow.test.com", outcome, 0, FlowOrigin::kApp, true);
  EXPECT_FALSE(f.decrypted_payload.has_value());
}

TEST(CaptureTest, DestinationsAreUniqueAndSorted) {
  Capture cap;
  Flow a;
  a.sni = "b.com";
  Flow b;
  b.sni = "a.com";
  Flow c;
  c.sni = "b.com";
  Flow empty;  // no SNI
  cap.flows = {a, b, c, empty};
  EXPECT_EQ(cap.Destinations(), (std::vector<std::string>{"a.com", "b.com"}));
}

TEST(CaptureTest, FlowsToFiltersBySni) {
  Capture cap;
  Flow a;
  a.sni = "x.com";
  Flow b;
  b.sni = "y.com";
  cap.flows = {a, b, a};
  EXPECT_EQ(cap.FlowsTo("x.com").size(), 2u);
  EXPECT_EQ(cap.FlowsTo("z.com").size(), 0u);
}

TEST(CaptureTest, SniCoverage) {
  Capture cap;
  Flow named;
  named.sni = "x.com";
  Flow anonymous;
  cap.flows = {named, named, named, anonymous};
  EXPECT_DOUBLE_EQ(cap.SniCoverage(), 0.75);
  EXPECT_DOUBLE_EQ(Capture{}.SniCoverage(), 0.0);
}

TEST(FlowTest, WeakCipherFlagFollowsOffer) {
  Flow f;
  f.offered_ciphers = tls::ModernCipherOffer();
  EXPECT_FALSE(f.AdvertisesWeakCipher());
  f.offered_ciphers = tls::LegacyCipherOffer();
  EXPECT_TRUE(f.AdvertisesWeakCipher());
}

}  // namespace
}  // namespace pinscope::net

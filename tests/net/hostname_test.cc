#include "net/hostname.h"

#include <gtest/gtest.h>

namespace pinscope::net {
namespace {

TEST(HostnameTest, RegistrableDomainBasic) {
  EXPECT_EQ(RegistrableDomain("api.example.com"), "example.com");
  EXPECT_EQ(RegistrableDomain("a.b.c.example.com"), "example.com");
  EXPECT_EQ(RegistrableDomain("example.com"), "example.com");
  EXPECT_EQ(RegistrableDomain("localhost"), "localhost");
}

TEST(HostnameTest, RegistrableDomainTwoLabelSuffixes) {
  EXPECT_EQ(RegistrableDomain("shop.example.co.uk"), "example.co.uk");
  EXPECT_EQ(RegistrableDomain("example.co.uk"), "example.co.uk");
  EXPECT_EQ(RegistrableDomain("a.b.site.com.au"), "site.com.au");
}

TEST(HostnameTest, IsSubdomainOf) {
  EXPECT_TRUE(IsSubdomainOf("api.example.com", "example.com"));
  EXPECT_TRUE(IsSubdomainOf("example.com", "example.com"));
  EXPECT_FALSE(IsSubdomainOf("badexample.com", "example.com"));
  EXPECT_FALSE(IsSubdomainOf("example.com", "api.example.com"));
}

TEST(HostnameTest, LooksLikeHostname) {
  EXPECT_TRUE(LooksLikeHostname("api.example.com"));
  EXPECT_TRUE(LooksLikeHostname("a-b.c1.io"));
  EXPECT_FALSE(LooksLikeHostname("nohost"));
  EXPECT_FALSE(LooksLikeHostname(""));
  EXPECT_FALSE(LooksLikeHostname("has space.com"));
  EXPECT_FALSE(LooksLikeHostname("double..dot.com"));
  EXPECT_FALSE(LooksLikeHostname("trailing.dot."));
  EXPECT_FALSE(LooksLikeHostname("UPPER.case.com"));
}

}  // namespace
}  // namespace pinscope::net

#include "net/http.h"

#include <gtest/gtest.h>

namespace pinscope::net {
namespace {

constexpr const char* kRequest =
    "POST /v1/collect?src=sdk HTTP/1.1\r\n"
    "Host: api.example.com\r\n"
    "User-Agent: okhttp/4.9\r\n"
    "Content-Type: application/x-www-form-urlencoded\r\n"
    "\r\n"
    "session=123&idfa=abc-def";

TEST(HttpTest, ParsesRequestLineHeadersBody) {
  const auto req = HttpRequest::Parse(kRequest);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->target, "/v1/collect?src=sdk");
  EXPECT_EQ(req->version, "HTTP/1.1");
  EXPECT_EQ(req->headers.size(), 3u);
  EXPECT_EQ(req->Header("host"), "api.example.com");
  EXPECT_EQ(req->Header("HOST"), "api.example.com");
  EXPECT_EQ(req->body, "session=123&idfa=abc-def");
}

TEST(HttpTest, PathAndQuery) {
  const auto req = HttpRequest::Parse(kRequest);
  EXPECT_EQ(req->Path(), "/v1/collect");
  const auto query = req->QueryParams();
  ASSERT_EQ(query.size(), 1u);
  EXPECT_EQ(query[0], (std::pair<std::string, std::string>{"src", "sdk"}));
}

TEST(HttpTest, FormParamsRequireFormContentType) {
  const auto req = HttpRequest::Parse(kRequest);
  const auto form = req->FormParams();
  ASSERT_EQ(form.size(), 2u);
  EXPECT_EQ(form[1].first, "idfa");
  EXPECT_EQ(form[1].second, "abc-def");

  auto json = *req;
  json.headers[2] = {"Content-Type", "application/json"};
  EXPECT_TRUE(json.FormParams().empty());
}

TEST(HttpTest, SerializeRoundTrips) {
  const auto req = HttpRequest::Parse(kRequest);
  const auto again = HttpRequest::Parse(req->Serialize());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->method, req->method);
  EXPECT_EQ(again->target, req->target);
  EXPECT_EQ(again->headers, req->headers);
  EXPECT_EQ(again->body, req->body);
}

TEST(HttpTest, ParsesBodylessRequest) {
  const auto req = HttpRequest::Parse("GET / HTTP/1.1\r\nHost: x.com\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_TRUE(req->body.empty());
  EXPECT_TRUE(req->QueryParams().empty());
}

TEST(HttpTest, RejectsMalformedRequestLine) {
  EXPECT_FALSE(HttpRequest::Parse("not http at all").has_value());
  EXPECT_FALSE(HttpRequest::Parse("GET /missing-version\r\n\r\n").has_value());
  EXPECT_FALSE(HttpRequest::Parse("").has_value());
}

TEST(HttpTest, RejectsHeaderWithoutColon) {
  EXPECT_FALSE(
      HttpRequest::Parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n").has_value());
}

TEST(HttpTest, ParseFormEncoded) {
  const auto params = ParseFormEncoded("a=1&b=&c&d=x=y");
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(params[1], (std::pair<std::string, std::string>{"b", ""}));
  EXPECT_EQ(params[2], (std::pair<std::string, std::string>{"c", ""}));
  EXPECT_EQ(params[3], (std::pair<std::string, std::string>{"d", "x=y"}));
  EXPECT_TRUE(ParseFormEncoded("").empty());
}

}  // namespace
}  // namespace pinscope::net

#include "net/party.h"

#include <gtest/gtest.h>

namespace pinscope::net {
namespace {

OrganizationDirectory MakeDir() {
  OrganizationDirectory dir;
  dir.Register("acme.com", "acme");
  dir.Register("acmecdn.net", "acme");
  dir.Register("tracker.io", "bigdata");
  return dir;
}

TEST(PartyTest, OwnerLookupUsesRegistrableDomain) {
  const auto dir = MakeDir();
  EXPECT_EQ(dir.OwnerOf("api.acme.com"), "acme");
  EXPECT_EQ(dir.OwnerOf("deep.sub.acme.com"), "acme");
  EXPECT_EQ(dir.OwnerOf("acme.com"), "acme");
  EXPECT_FALSE(dir.OwnerOf("unknown.org").has_value());
}

TEST(PartyTest, FirstPartyAttribution) {
  const auto dir = MakeDir();
  EXPECT_EQ(dir.Attribute("acme", "api.acme.com"), Party::kFirst);
  EXPECT_EQ(dir.Attribute("acme", "img.acmecdn.net"), Party::kFirst);
  EXPECT_EQ(dir.Attribute("acme", "collect.tracker.io"), Party::kThird);
  EXPECT_EQ(dir.Attribute("acme", "unknown.org"), Party::kUnknown);
}

TEST(PartyTest, PartyOrThirdCollapsesUnknown) {
  const auto dir = MakeDir();
  EXPECT_EQ(dir.PartyOrThird("acme", "unknown.org"), Party::kThird);
  EXPECT_EQ(dir.PartyOrThird("acme", "api.acme.com"), Party::kFirst);
}

TEST(PartyTest, ReRegistrationWins) {
  OrganizationDirectory dir;
  dir.Register("sold.com", "old-owner");
  dir.Register("sold.com", "new-owner");
  EXPECT_EQ(dir.OwnerOf("www.sold.com"), "new-owner");
  EXPECT_EQ(dir.size(), 1u);
}

TEST(PartyTest, NamesAreStable) {
  EXPECT_EQ(PartyName(Party::kFirst), "first-party");
  EXPECT_EQ(PartyName(Party::kThird), "third-party");
  EXPECT_EQ(PartyName(Party::kUnknown), "unknown");
}

}  // namespace
}  // namespace pinscope::net

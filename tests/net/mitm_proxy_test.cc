#include "net/mitm_proxy.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pinscope::net {
namespace {

struct ProxyWorld {
  ProxyWorld() : store(x509::PublicCaCatalog::Instance().MozillaStore()) {
    const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.orionsign");
    util::Rng rng(31);
    x509::IssueSpec spec;
    spec.subject.set_common_name("api.proxied.com");
    spec.san_dns = {"api.proxied.com"};
    spec.not_before = -util::kMillisPerDay;
    spec.not_after = util::kMillisPerYear;
    server.hostname = "api.proxied.com";
    server.chain = {ca.Issue(spec, rng), ca.certificate()};
    client.root_store = &store;
    payload.plaintext = "POST /login user=alice";
  }
  tls::ServerEndpoint server;
  x509::RootStore store;
  tls::ClientTlsConfig client;
  tls::AppPayload payload;
};

TEST(MitmProxyTest, ClientWithoutProxyCaRejectsInterception) {
  ProxyWorld w;
  MitmProxy proxy;
  util::Rng rng(1);
  const auto result = proxy.Intercept(w.client, w.server, w.payload, 0, rng);
  EXPECT_FALSE(result.decrypted);
  EXPECT_EQ(result.outcome.failure, tls::FailureReason::kCertificateInvalid);
}

TEST(MitmProxyTest, ClientTrustingProxyCaIsDecrypted) {
  // The paper's test-device setup: proxy CA installed in the OS store.
  ProxyWorld w;
  MitmProxy proxy;
  w.store.AddRoot(proxy.CaCertificate());
  util::Rng rng(2);
  const auto result = proxy.Intercept(w.client, w.server, w.payload, 0, rng);
  EXPECT_TRUE(result.decrypted);
  EXPECT_TRUE(result.outcome.handshake_complete);
  EXPECT_EQ(result.outcome.plaintext_sent, w.payload.plaintext);
}

TEST(MitmProxyTest, PinnedClientDefeatsInterceptionDespiteTrustedCa) {
  ProxyWorld w;
  MitmProxy proxy;
  w.store.AddRoot(proxy.CaCertificate());
  w.client.pins.AddRule(
      {"api.proxied.com", false,
       {tls::Pin::ForCertificate(w.server.chain.back(), tls::PinForm::kSpkiSha256)}});
  util::Rng rng(3);
  const auto result = proxy.Intercept(w.client, w.server, w.payload, 0, rng);
  EXPECT_FALSE(result.decrypted);
  EXPECT_EQ(result.outcome.failure, tls::FailureReason::kPinMismatch);
  EXPECT_EQ(result.outcome.closure, tls::Closure::kClientReset);
}

TEST(MitmProxyTest, ForgedLeafCoversRequestedHostname) {
  ProxyWorld w;
  MitmProxy proxy;
  w.store.AddRoot(proxy.CaCertificate());
  util::Rng rng(4);
  const auto result = proxy.Intercept(w.client, w.server, w.payload, 0, rng);
  // Hostname validation passed ⇒ the forged leaf covered the SNI.
  EXPECT_TRUE(result.outcome.validation.ok());
}

TEST(MitmProxyTest, ForgedChainIsCachedPerHost) {
  ProxyWorld w;
  MitmProxy proxy;
  w.store.AddRoot(proxy.CaCertificate());
  util::Rng rng(5);
  const auto first = proxy.Intercept(w.client, w.server, w.payload, 0, rng);
  const auto second = proxy.Intercept(w.client, w.server, w.payload, 0, rng);
  EXPECT_TRUE(first.decrypted);
  EXPECT_TRUE(second.decrypted);
}

TEST(MitmProxyTest, CaIdentityIsDeterministicPerLabel) {
  MitmProxy a("proxy-ca");
  MitmProxy b("proxy-ca");
  MitmProxy c("other-ca");
  EXPECT_EQ(a.CaCertificate(), b.CaCertificate());
  EXPECT_NE(a.CaCertificate(), c.CaCertificate());
}

}  // namespace
}  // namespace pinscope::net

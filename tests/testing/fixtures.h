// Shared hand-built fixtures for dynamic-analysis and integration tests:
// a small server world plus apps with known pinning behaviour — independent
// of the corpus generator, so unit tests do not depend on calibration.
#pragma once

#include <map>
#include <string>

#include "appmodel/app.h"
#include "appmodel/server_world.h"
#include "store/generator.h"
#include "tls/pinning.h"

namespace pinscope::testing {

/// Shared "mini-corpus": a generated ecosystem small enough for integration
/// tests (≈16 apps spanning both platforms and all six datasets) yet built
/// by the real calibrated generator. Cached per seed for the process
/// lifetime so a suite of integration tests shares one generation instead
/// of each regenerating an ecosystem. Not thread-safe to *populate*: call
/// first from a single-threaded context (gtest runs tests serially).
inline const store::Ecosystem& MiniCorpus(std::uint64_t seed = 7) {
  static std::map<std::uint64_t, store::Ecosystem> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    store::EcosystemConfig config;
    config.seed = seed;
    // ≈0.3% of the paper's corpus: 1-2 common pairs plus a few popular and
    // random apps per platform — the smallest scale at which every dataset
    // is still populated.
    config.scale = 0.003;
    it = cache.emplace(seed, store::Ecosystem::Generate(config)).first;
  }
  return it->second;
}

/// A world with a handful of servers an app under test can contact.
inline appmodel::ServerWorld MakeWorld(std::uint64_t seed = 99) {
  appmodel::ServerWorld world(seed);
  world.EnsureDefaultPki("api.fixture.com", "fixture");
  world.EnsureDefaultPki("www.fixture.com", "fixture");
  world.EnsureDefaultPki("tracker.ads.com", "adcorp");
  world.EnsureDefaultPki("cdn.assets.net", "assetco");
  return world;
}

/// A pin for the root of `host`'s served chain.
inline tls::Pin RootPinFor(const appmodel::ServerWorld& world,
                           const std::string& host) {
  return tls::Pin::ForCertificate(world.Find(host)->endpoint.chain.back(),
                                  tls::PinForm::kSpkiSha256);
}

/// Base metadata for a fixture app.
inline appmodel::AppMetadata FixtureMeta(appmodel::Platform platform) {
  appmodel::AppMetadata meta;
  meta.platform = platform;
  meta.app_id = platform == appmodel::Platform::kAndroid ? "com.fixture.app"
                                                         : "com.fixture.ios";
  meta.display_name = "Fixture";
  meta.category = "Finance";
  meta.developer_org = "fixture";
  return meta;
}

/// An app that pins api.fixture.com (hookable stack) and talks, unpinned,
/// to tracker.ads.com.
inline appmodel::App MakePinningApp(const appmodel::ServerWorld& world,
                                    appmodel::Platform platform) {
  appmodel::App app;
  app.meta = FixtureMeta(platform);

  appmodel::DestinationBehavior pinned;
  pinned.hostname = "api.fixture.com";
  pinned.pinned = true;
  pinned.pins = {RootPinFor(world, "api.fixture.com")};
  pinned.stack = platform == appmodel::Platform::kAndroid
                     ? tls::TlsStack::kOkHttp
                     : tls::TlsStack::kNsUrlSession;
  pinned.payload_template = "POST /login token={{ad_id}}";
  app.behavior.destinations.push_back(pinned);

  appmodel::DestinationBehavior tracker;
  tracker.hostname = "tracker.ads.com";
  tracker.payload_template = "GET /pixel?id={{ad_id}}";
  app.behavior.destinations.push_back(tracker);

  return app;
}

/// An app with no pinning at all.
inline appmodel::App MakePlainApp(const appmodel::ServerWorld& world,
                                  appmodel::Platform platform) {
  (void)world;
  appmodel::App app;
  app.meta = FixtureMeta(platform);
  appmodel::DestinationBehavior d;
  d.hostname = "www.fixture.com";
  d.payload_template = "GET / HTTP/1.1";
  app.behavior.destinations.push_back(d);
  return app;
}

}  // namespace pinscope::testing

// Shared hand-built fixtures for dynamic-analysis and integration tests:
// a small server world plus apps with known pinning behaviour — independent
// of the corpus generator, so unit tests do not depend on calibration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "appmodel/app.h"
#include "appmodel/server_world.h"
#include "store/generator.h"
#include "tls/pinning.h"

namespace pinscope::testing {

/// The shared small-corpus builder every study-level suite uses: a generated
/// ecosystem of roughly `n_apps` apps spanning both platforms and all six
/// datasets, built by the real calibrated generator. Cached per (seed,
/// n_apps) for the process lifetime so a suite shares one generation instead
/// of each test regenerating an ecosystem. Not thread-safe to *populate*:
/// call first from a single-threaded context (gtest runs tests serially).
inline const store::Ecosystem& MakeStudyCorpus(std::uint64_t seed,
                                               std::size_t n_apps = 16) {
  static std::map<std::pair<std::uint64_t, std::size_t>, store::Ecosystem>
      cache;
  const auto key = std::make_pair(seed, n_apps);
  auto it = cache.find(key);
  if (it == cache.end()) {
    store::EcosystemConfig config;
    config.seed = seed;
    // The paper-scale corpus holds ≈5.3k apps, so scale ≈ n_apps / 5333.
    // The default 16 reproduces the classic 0.3% mini corpus: 1-2 common
    // pairs plus a few popular and random apps per platform — the smallest
    // scale at which every dataset is still populated.
    config.scale = static_cast<double>(n_apps) / 5333.0;
    it = cache.emplace(key, store::Ecosystem::Generate(config)).first;
  }
  return it->second;
}

/// The classic 16-app mini corpus (kept as a named shorthand; see
/// MakeStudyCorpus for the cache semantics).
inline const store::Ecosystem& MiniCorpus(std::uint64_t seed = 7) {
  return MakeStudyCorpus(seed, 16);
}

/// A world with a handful of servers an app under test can contact.
inline appmodel::ServerWorld MakeWorld(std::uint64_t seed = 99) {
  appmodel::ServerWorld world(seed);
  world.EnsureDefaultPki("api.fixture.com", "fixture");
  world.EnsureDefaultPki("www.fixture.com", "fixture");
  world.EnsureDefaultPki("tracker.ads.com", "adcorp");
  world.EnsureDefaultPki("cdn.assets.net", "assetco");
  return world;
}

/// A pin for the root of `host`'s served chain.
inline tls::Pin RootPinFor(const appmodel::ServerWorld& world,
                           const std::string& host) {
  return tls::Pin::ForCertificate(world.Find(host)->endpoint.chain.back(),
                                  tls::PinForm::kSpkiSha256);
}

/// Base metadata for a fixture app.
inline appmodel::AppMetadata FixtureMeta(appmodel::Platform platform) {
  appmodel::AppMetadata meta;
  meta.platform = platform;
  meta.app_id = platform == appmodel::Platform::kAndroid ? "com.fixture.app"
                                                         : "com.fixture.ios";
  meta.display_name = "Fixture";
  meta.category = "Finance";
  meta.developer_org = "fixture";
  return meta;
}

/// An app that pins api.fixture.com (hookable stack) and talks, unpinned,
/// to tracker.ads.com.
inline appmodel::App MakePinningApp(const appmodel::ServerWorld& world,
                                    appmodel::Platform platform) {
  appmodel::App app;
  app.meta = FixtureMeta(platform);

  appmodel::DestinationBehavior pinned;
  pinned.hostname = "api.fixture.com";
  pinned.pinned = true;
  pinned.pins = {RootPinFor(world, "api.fixture.com")};
  pinned.stack = platform == appmodel::Platform::kAndroid
                     ? tls::TlsStack::kOkHttp
                     : tls::TlsStack::kNsUrlSession;
  pinned.payload_template = "POST /login token={{ad_id}}";
  app.behavior.destinations.push_back(pinned);

  appmodel::DestinationBehavior tracker;
  tracker.hostname = "tracker.ads.com";
  tracker.payload_template = "GET /pixel?id={{ad_id}}";
  app.behavior.destinations.push_back(tracker);

  return app;
}

/// An app with no pinning at all.
inline appmodel::App MakePlainApp(const appmodel::ServerWorld& world,
                                  appmodel::Platform platform) {
  (void)world;
  appmodel::App app;
  app.meta = FixtureMeta(platform);
  appmodel::DestinationBehavior d;
  d.hostname = "www.fixture.com";
  d.payload_template = "GET / HTTP/1.1";
  app.behavior.destinations.push_back(d);
  return app;
}

}  // namespace pinscope::testing
